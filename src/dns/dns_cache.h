// Sharded DNS TTL cache with negative caching — the resolver's hot store.
//
// ROADMAP item 2 sizes the resolver for millions of names; the cache is
// where that budget lives, so it follows core/host_db.h rather than a
// node-based map: lock-striped stripes (core/sharded.h layout, alignas(64),
// power-of-two count), fixed-size slots in flat vectors, an open-addressing
// index with backward-shift deletion (no tombstone rot under storm churn),
// names copied once into per-stripe size-class slab arenas and records into
// fixed-POD slabs. MemoryStats reports the modeled footprint and
// bytes-per-name exactly like HostDb::memory_stats — bench_e7_dns asserts
// the budget at 10⁶ entries.
//
// Negative caching (§VII-A NXDOMAIN answers) with two hard bounds the
// flood path cannot break:
//  * TTL bound: negative entries are clamped to Config::max_negative_ttl
//    no matter what the caller asks for;
//  * occupancy bound: at most Config::negative_percent of each stripe holds
//    negatives, and a negative insert NEVER evicts a positive — when the
//    stripe is full of positives the negative is simply not cached
//    (negative_uncached). A random-name storm therefore churns only its own
//    bounded slice and the positive hit rate recovers the moment it stops.
//
// Invalidation: entries are stamped with the zone's VerdictEpoch generation
// AS OBSERVED BY THE CALLER BEFORE THE ZONE READ (the flow-cache rule —
// stamping at insert time would let a racing zone update hide behind a
// fresh stamp). A lookup whose entry carries a stale generation erases it
// and reports a miss (stale_epoch), so one atomic bump on zone put/erase
// invalidates every derived answer, positive and negative, in every
// stripe.
//
// Every member function is thread-safe. Lookups take the stripe mutex
// exclusively (LRU reordering mutates on read, same trade as HostDb's
// schedule updates).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "core/messages.h"
#include "core/sharded.h"
#include "util/bytes.h"

namespace apna::dns {

/// Fixed-size payload of a positive entry — everything in core::DnsRecord
/// except the name, which lives in the stripe's name arena.
struct CompactDnsRecord {
  core::EphIdCertificate cert;
  crypto::Ed25519Signature sig;
  std::uint32_t ipv4 = 0;
};
static_assert(sizeof(CompactDnsRecord) <= 256,
              "DNS record slab class outgrew its budget — rethink before "
              "silently inflating the per-name footprint");

class DnsCache {
 public:
  struct Config {
    /// Total slots across all stripes (positives + negatives). The index
    /// arrays are allocated eagerly (2x capacity), so size to the
    /// deployment: bench_e7_dns runs at 1<<20, per-AS resolvers default
    /// smaller.
    std::size_t capacity = 1u << 16;
    std::size_t shard_count = core::kDefaultShardCount;
    /// Hard TTL clamp for NXDOMAIN entries, seconds.
    core::ExpTime max_negative_ttl = 30;
    /// Hard occupancy clamp for NXDOMAIN entries, percent of each stripe.
    std::uint32_t negative_percent = 25;
  };

  /// Plain copyable counters — what stats() returns.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t negative_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t expired = 0;            // TTL-lapsed entries dropped on read
    std::uint64_t stale_epoch = 0;        // zone-epoch invalidations on read
    std::uint64_t insertions = 0;
    std::uint64_t negative_insertions = 0;
    std::uint64_t evictions = 0;          // positives displaced (LRU)
    std::uint64_t negative_evictions = 0; // negatives displaced (LRU/cap)
    std::uint64_t negative_uncached = 0;  // negatives refused (stripe full)
  };

  /// Modeled memory accounting (HostDb::MemoryStats convention: reserved
  /// bytes, not malloc metadata).
  struct MemoryStats {
    std::uint64_t entries = 0;
    std::uint64_t negative_entries = 0;
    std::uint64_t slot_bytes = 0;    // slot vectors (flat, reserved)
    std::uint64_t index_bytes = 0;   // open-addressing hash + slot arrays
    std::uint64_t name_bytes = 0;    // size-class name slabs
    std::uint64_t record_bytes = 0;  // CompactDnsRecord slabs
    std::uint64_t fixed_bytes = 0;   // stripe headers + this object

    std::uint64_t total() const {
      return slot_bytes + index_bytes + name_bytes + record_bytes +
             fixed_bytes;
    }
    double bytes_per_name() const {
      return entries == 0 ? 0.0
                          : static_cast<double>(total()) /
                                static_cast<double>(entries);
    }
  };

  enum class Outcome : std::uint8_t { miss = 0, hit = 1, negative = 2 };

  /// `zone_epoch` is the zone's generation counter (services::DnsZone::
  /// epoch()); the cache only reads it on lookups.
  DnsCache(const Config& cfg, const core::VerdictEpoch& zone_epoch)
      : cfg_(cfg),
        epoch_(zone_epoch),
        count_(core::round_up_pow2(
            cfg.shard_count == 0 ? 1 : cfg.shard_count)),
        mask_(count_ - 1),
        stripes_(std::make_unique<Stripe[]>(count_)) {
    const std::size_t per = (cfg_.capacity + count_ - 1) / count_;
    slot_cap_ = per < 4 ? 4 : per;
    neg_cap_ = slot_cap_ * cfg_.negative_percent / 100;
    if (neg_cap_ == 0) neg_cap_ = 1;
    index_size_ = core::round_up_pow2(2 * slot_cap_);
    for (std::size_t i = 0; i < count_; ++i) {
      Stripe& s = stripes_[i];
      s.idx_hash.assign(index_size_, 0);
      s.idx_slot.assign(index_size_, kEmpty);
    }
  }

  /// Positive/negative/miss. On a positive hit, fills `*out` (name, cert,
  /// ipv4, signature) when `out` is non-null. Expired and stale-epoch
  /// entries are erased on the way and reported as misses.
  Outcome lookup(std::string_view name, core::ExpTime now,
                 core::DnsRecord* out) {
    const std::uint64_t h = hash(name);
    Stripe& s = stripe(h);
    const std::uint64_t gen = epoch_.current();
    std::lock_guard lock(s.mu);
    const std::size_t i = index_find(s, h, name);
    if (i == kNotFound) {
      counters_.misses.fetch_add(1, std::memory_order_relaxed);
      return Outcome::miss;
    }
    const std::uint32_t slot = s.idx_slot[i];
    Slot& e = s.slots[slot];
    if (e.epoch != gen) {
      erase_entry(s, i, slot);
      counters_.stale_epoch.fetch_add(1, std::memory_order_relaxed);
      counters_.misses.fetch_add(1, std::memory_order_relaxed);
      return Outcome::miss;
    }
    if (e.expires_at <= now) {
      erase_entry(s, i, slot);
      counters_.expired.fetch_add(1, std::memory_order_relaxed);
      counters_.misses.fetch_add(1, std::memory_order_relaxed);
      return Outcome::miss;
    }
    const bool negative = (e.flags & kNegative) != 0;
    lru_touch(s, negative ? s.neg : s.pos, slot);
    if (negative) {
      counters_.negative_hits.fetch_add(1, std::memory_order_relaxed);
      return Outcome::negative;
    }
    if (out) {
      const CompactDnsRecord& rec = record_at(s, e.rec_index);
      out->name.assign(name_at(s, e.name_off), e.name_len);
      out->cert = rec.cert;
      out->ipv4 = rec.ipv4;
      out->sig = rec.sig;
    }
    counters_.hits.fetch_add(1, std::memory_order_relaxed);
    return Outcome::hit;
  }

  /// Caches a positive answer. `epoch` is the zone generation the caller
  /// observed BEFORE reading the zone. Replaces any existing entry for the
  /// name; evicts the LRU negative first, then the LRU positive, when the
  /// stripe is full.
  void insert(std::string_view name, const core::DnsRecord& rec,
              core::ExpTime expires_at, std::uint64_t epoch) {
    if (name.empty() || name.size() > kMaxNameBytes) return;
    const std::uint64_t h = hash(name);
    Stripe& s = stripe(h);
    std::lock_guard lock(s.mu);
    drop_existing(s, h, name);
    if (s.entries == slot_cap_) {
      if (s.neg.tail >= 0)
        evict(s, s.neg, true);
      else
        evict(s, s.pos, false);
    }
    const std::uint32_t slot = alloc_slot(s);
    Slot& e = s.slots[slot];
    e.name_hash = h;
    e.epoch = epoch;
    e.expires_at = expires_at;
    e.name_len = static_cast<std::uint16_t>(name.size());
    e.name_off = name_alloc(s, name);
    e.rec_index = rec_alloc(s);
    CompactDnsRecord& c = record_at(s, e.rec_index);
    c.cert = rec.cert;
    c.sig = rec.sig;
    c.ipv4 = rec.ipv4;
    e.flags = 0;
    index_insert(s, h, slot);
    lru_push_front(s, s.pos, slot);
    ++s.entries;
    counters_.insertions.fetch_add(1, std::memory_order_relaxed);
  }

  /// Caches an NXDOMAIN answer with TTL min(ttl, max_negative_ttl). Never
  /// evicts a positive: when the stripe has no negative slot to reuse and
  /// no free capacity, the answer is simply not cached.
  void insert_negative(std::string_view name, core::ExpTime now,
                       core::ExpTime ttl, std::uint64_t epoch) {
    if (name.empty() || name.size() > kMaxNameBytes) return;
    const core::ExpTime bounded =
        ttl < cfg_.max_negative_ttl ? ttl : cfg_.max_negative_ttl;
    const std::uint64_t h = hash(name);
    Stripe& s = stripe(h);
    std::lock_guard lock(s.mu);
    drop_existing(s, h, name);
    if (s.neg_entries >= neg_cap_) evict(s, s.neg, true);
    if (s.entries == slot_cap_) {
      if (s.neg.tail < 0) {
        counters_.negative_uncached.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      evict(s, s.neg, true);
    }
    const std::uint32_t slot = alloc_slot(s);
    Slot& e = s.slots[slot];
    e.name_hash = h;
    e.epoch = epoch;
    e.expires_at = now + bounded;
    e.name_len = static_cast<std::uint16_t>(name.size());
    e.name_off = name_alloc(s, name);
    e.rec_index = kEmpty;
    e.flags = kNegative;
    index_insert(s, h, slot);
    lru_push_front(s, s.neg, slot);
    ++s.entries;
    ++s.neg_entries;
    counters_.negative_insertions.fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < count_; ++i) {
      std::lock_guard lock(stripes_[i].mu);
      n += stripes_[i].entries;
    }
    return n;
  }

  std::size_t negative_size() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < count_; ++i) {
      std::lock_guard lock(stripes_[i].mu);
      n += stripes_[i].neg_entries;
    }
    return n;
  }

  /// The occupancy clamp, total across stripes (tests assert against it).
  std::size_t negative_capacity() const { return neg_cap_ * count_; }
  std::size_t capacity() const { return slot_cap_ * count_; }

  Stats stats() const {
    Stats s;
    s.hits = counters_.hits.load(std::memory_order_relaxed);
    s.negative_hits = counters_.negative_hits.load(std::memory_order_relaxed);
    s.misses = counters_.misses.load(std::memory_order_relaxed);
    s.expired = counters_.expired.load(std::memory_order_relaxed);
    s.stale_epoch = counters_.stale_epoch.load(std::memory_order_relaxed);
    s.insertions = counters_.insertions.load(std::memory_order_relaxed);
    s.negative_insertions =
        counters_.negative_insertions.load(std::memory_order_relaxed);
    s.evictions = counters_.evictions.load(std::memory_order_relaxed);
    s.negative_evictions =
        counters_.negative_evictions.load(std::memory_order_relaxed);
    s.negative_uncached =
        counters_.negative_uncached.load(std::memory_order_relaxed);
    return s;
  }

  MemoryStats memory_stats() const {
    MemoryStats m;
    m.fixed_bytes = sizeof(*this) + count_ * sizeof(Stripe);
    for (std::size_t i = 0; i < count_; ++i) {
      const Stripe& s = stripes_[i];
      std::lock_guard lock(s.mu);
      m.entries += s.entries;
      m.negative_entries += s.neg_entries;
      m.slot_bytes += s.slots.capacity() * sizeof(Slot);
      m.index_bytes += index_size_ * (sizeof(std::uint64_t) +
                                      sizeof(std::uint32_t));
      m.name_bytes += s.name_slabs.size() * kNameSlabBytes;
      m.record_bytes +=
          s.rec_slabs.size() * kRecSlabRecords * sizeof(CompactDnsRecord);
      for (const auto& fl : s.name_free)
        m.fixed_bytes += fl.capacity() * sizeof(std::uint32_t);
      m.fixed_bytes += (s.free_slots.capacity() + s.rec_free.capacity()) *
                       sizeof(std::uint32_t);
    }
    return m;
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);
  static constexpr std::uint8_t kNegative = 1;
  static constexpr std::size_t kMaxNameBytes = 253;  // dotted form
  static constexpr std::size_t kNameSlabBytes = 64 * 1024;
  static constexpr std::size_t kRecSlabRecords = 512;
  // Size classes for arena names (dotted names are ≤ 253 bytes).
  static constexpr std::uint32_t kClassBytes[4] = {32, 64, 128, 256};

  struct Slot {
    std::uint64_t name_hash = 0;
    std::uint64_t epoch = 0;
    std::uint32_t name_off = 0;
    std::uint32_t rec_index = kEmpty;  // kEmpty for negatives
    core::ExpTime expires_at = 0;
    std::int32_t lru_prev = -1;
    std::int32_t lru_next = -1;
    std::uint16_t name_len = 0;
    std::uint8_t flags = 0;
  };

  struct LruList {
    std::int32_t head = -1;
    std::int32_t tail = -1;
  };

  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::vector<Slot> slots;
    std::vector<std::uint32_t> free_slots;
    // Open-addressing index: parallel hash/slot arrays, linear probing,
    // backward-shift deletion (storm churn must not grow tombstones).
    std::vector<std::uint64_t> idx_hash;
    std::vector<std::uint32_t> idx_slot;
    LruList pos;
    LruList neg;
    std::size_t entries = 0;
    std::size_t neg_entries = 0;
    // Name arena: 64 KiB slabs carved into size classes; freed names go to
    // the matching class free list and never cross a slab boundary.
    std::vector<std::unique_ptr<std::uint8_t[]>> name_slabs;
    std::size_t name_bump = kNameSlabBytes;  // force a slab on first alloc
    std::vector<std::uint32_t> name_free[4];
    // Record slabs: fixed PODs with a free list, HostDb-style.
    std::vector<std::unique_ptr<CompactDnsRecord[]>> rec_slabs;
    std::size_t rec_bump = kRecSlabRecords;
    std::vector<std::uint32_t> rec_free;
  };

  struct Counters {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> negative_hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> expired{0};
    std::atomic<std::uint64_t> stale_epoch{0};
    std::atomic<std::uint64_t> insertions{0};
    std::atomic<std::uint64_t> negative_insertions{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> negative_evictions{0};
    std::atomic<std::uint64_t> negative_uncached{0};
  };

  /// Seeded FNV-1a + finalizer. Bit usage is DISJOINT (HostDb convention):
  /// stripe selection reads the TOP byte, index probing the LOW bits, and
  /// the seed decorrelates from DnsZone's striping of the same names.
  static std::uint64_t hash(std::string_view name) {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const char c : name) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h;
  }

  Stripe& stripe(std::uint64_t h) const { return stripes_[(h >> 56) & mask_]; }

  const char* name_at(const Stripe& s, std::uint32_t off) const {
    return reinterpret_cast<const char*>(
        s.name_slabs[off / kNameSlabBytes].get() + off % kNameSlabBytes);
  }

  CompactDnsRecord& record_at(const Stripe& s, std::uint32_t idx) const {
    return s.rec_slabs[idx / kRecSlabRecords][idx % kRecSlabRecords];
  }

  static std::size_t size_class(std::size_t len) {
    if (len <= 32) return 0;
    if (len <= 64) return 1;
    if (len <= 128) return 2;
    return 3;
  }

  // ---- index (linear probe + backshift delete) -------------------------------

  std::size_t index_find(const Stripe& s, std::uint64_t h,
                         std::string_view name) const {
    std::size_t i = h & (index_size_ - 1);
    while (s.idx_slot[i] != kEmpty) {
      if (s.idx_hash[i] == h) {
        const Slot& e = s.slots[s.idx_slot[i]];
        if (e.name_len == name.size() &&
            std::memcmp(name_at(s, e.name_off), name.data(), name.size()) == 0)
          return i;
      }
      i = (i + 1) & (index_size_ - 1);
    }
    return kNotFound;
  }

  void index_insert(Stripe& s, std::uint64_t h, std::uint32_t slot) {
    std::size_t i = h & (index_size_ - 1);
    while (s.idx_slot[i] != kEmpty) i = (i + 1) & (index_size_ - 1);
    s.idx_hash[i] = h;
    s.idx_slot[i] = slot;
  }

  void index_erase(Stripe& s, std::size_t i) {
    const std::size_t mask = index_size_ - 1;
    s.idx_slot[i] = kEmpty;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (s.idx_slot[j] == kEmpty) return;
      const std::size_t ideal = s.idx_hash[j] & mask;
      // j's entry may slide into the hole at i iff its ideal position is
      // cyclically at-or-before i (the classic backshift condition).
      if (((j - ideal) & mask) >= ((j - i) & mask)) {
        s.idx_hash[i] = s.idx_hash[j];
        s.idx_slot[i] = s.idx_slot[j];
        s.idx_slot[j] = kEmpty;
        i = j;
      }
    }
  }

  // ---- LRU -------------------------------------------------------------------

  void lru_unlink(Stripe& s, LruList& l, std::uint32_t slot) {
    Slot& e = s.slots[slot];
    if (e.lru_prev >= 0)
      s.slots[static_cast<std::uint32_t>(e.lru_prev)].lru_next = e.lru_next;
    else
      l.head = e.lru_next;
    if (e.lru_next >= 0)
      s.slots[static_cast<std::uint32_t>(e.lru_next)].lru_prev = e.lru_prev;
    else
      l.tail = e.lru_prev;
    e.lru_prev = e.lru_next = -1;
  }

  void lru_push_front(Stripe& s, LruList& l, std::uint32_t slot) {
    Slot& e = s.slots[slot];
    e.lru_prev = -1;
    e.lru_next = l.head;
    if (l.head >= 0)
      s.slots[static_cast<std::uint32_t>(l.head)].lru_prev =
          static_cast<std::int32_t>(slot);
    l.head = static_cast<std::int32_t>(slot);
    if (l.tail < 0) l.tail = static_cast<std::int32_t>(slot);
  }

  void lru_touch(Stripe& s, LruList& l, std::uint32_t slot) {
    if (l.head == static_cast<std::int32_t>(slot)) return;
    lru_unlink(s, l, slot);
    lru_push_front(s, l, slot);
  }

  // ---- entry lifecycle -------------------------------------------------------

  std::uint32_t alloc_slot(Stripe& s) {
    if (!s.free_slots.empty()) {
      const std::uint32_t slot = s.free_slots.back();
      s.free_slots.pop_back();
      return slot;
    }
    if (s.slots.capacity() == 0) s.slots.reserve(slot_cap_);
    s.slots.push_back(Slot{});
    return static_cast<std::uint32_t>(s.slots.size() - 1);
  }

  std::uint32_t name_alloc(Stripe& s, std::string_view name) {
    const std::size_t cls = size_class(name.size());
    std::uint32_t off;
    if (!s.name_free[cls].empty()) {
      off = s.name_free[cls].back();
      s.name_free[cls].pop_back();
    } else {
      if (s.name_bump + kClassBytes[cls] > kNameSlabBytes) {
        s.name_slabs.push_back(
            std::make_unique<std::uint8_t[]>(kNameSlabBytes));
        s.name_bump = 0;
      }
      off = static_cast<std::uint32_t>((s.name_slabs.size() - 1) *
                                           kNameSlabBytes +
                                       s.name_bump);
      s.name_bump += kClassBytes[cls];
    }
    std::memcpy(s.name_slabs[off / kNameSlabBytes].get() +
                    off % kNameSlabBytes,
                name.data(), name.size());
    return off;
  }

  std::uint32_t rec_alloc(Stripe& s) {
    if (!s.rec_free.empty()) {
      const std::uint32_t idx = s.rec_free.back();
      s.rec_free.pop_back();
      return idx;
    }
    if (s.rec_bump == kRecSlabRecords) {
      s.rec_slabs.push_back(
          std::make_unique<CompactDnsRecord[]>(kRecSlabRecords));
      s.rec_bump = 0;
    }
    const auto idx = static_cast<std::uint32_t>(
        (s.rec_slabs.size() - 1) * kRecSlabRecords + s.rec_bump);
    ++s.rec_bump;
    return idx;
  }

  /// Unlinks + frees `slot` and backshifts its index entry at `i`.
  void erase_entry(Stripe& s, std::size_t i, std::uint32_t slot) {
    Slot& e = s.slots[slot];
    const bool negative = (e.flags & kNegative) != 0;
    lru_unlink(s, negative ? s.neg : s.pos, slot);
    s.name_free[size_class(e.name_len)].push_back(e.name_off);
    if (e.rec_index != kEmpty) s.rec_free.push_back(e.rec_index);
    e = Slot{};
    s.free_slots.push_back(slot);
    index_erase(s, i);
    --s.entries;
    if (negative) --s.neg_entries;
  }

  /// Drops any existing entry for (h, name) — inserts replace.
  void drop_existing(Stripe& s, std::uint64_t h, std::string_view name) {
    const std::size_t i = index_find(s, h, name);
    if (i != kNotFound) erase_entry(s, i, s.idx_slot[i]);
  }

  /// Evicts the LRU entry of `l` (caller guarantees non-empty unless the
  /// list may legitimately be empty, in which case this is a no-op).
  void evict(Stripe& s, LruList& l, bool negative) {
    if (l.tail < 0) return;
    const auto slot = static_cast<std::uint32_t>(l.tail);
    const Slot& e = s.slots[slot];
    const std::size_t i =
        index_find(s, e.name_hash,
                   std::string_view(name_at(s, e.name_off), e.name_len));
    erase_entry(s, i, slot);
    (negative ? counters_.negative_evictions : counters_.evictions)
        .fetch_add(1, std::memory_order_relaxed);
  }

  Config cfg_;
  const core::VerdictEpoch& epoch_;
  std::size_t count_;
  std::size_t mask_;
  std::size_t slot_cap_ = 0;
  std::size_t neg_cap_ = 0;
  std::size_t index_size_ = 0;
  std::unique_ptr<Stripe[]> stripes_;
  Counters counters_;
};

}  // namespace apna::dns

#include "dns/dns_wire.h"

namespace apna::dns {
namespace {

// Frame discriminators (first byte on the wire).
constexpr std::uint8_t kKindQuery = 0;
constexpr std::uint8_t kKindResponse = 1;

constexpr bool canonical_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-' ||
         c == '_';
}

// Shared label walk for both encoders: calls `emit(label)` per label after
// full validation, so a failed name writes nothing.
template <class Emit>
Result<void> for_each_label(std::string_view name, Emit&& emit) {
  if (auto ok = validate_name(name); !ok) return ok;
  std::size_t start = 0;
  while (start <= name.size()) {
    std::size_t dot = name.find('.', start);
    if (dot == std::string_view::npos) dot = name.size();
    emit(name.substr(start, dot - start));
    start = dot + 1;
  }
  return Result<void>::success();
}

}  // namespace

std::string canonical_name(std::string_view name) {
  std::string out(name);
  for (char& c : out)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return out;
}

Result<void> validate_name(std::string_view name) {
  if (name.empty())
    return Result<void>(Errc::malformed, "empty DNS name");
  if (encoded_name_size(name) > kMaxNameLen)
    return Result<void>(Errc::malformed, "DNS name too long");
  std::size_t label = 0;
  for (const char c : name) {
    if (c == '.') {
      if (label == 0)
        return Result<void>(Errc::malformed, "empty DNS label");
      label = 0;
      continue;
    }
    if (!canonical_char(c))
      return Result<void>(Errc::malformed, "non-canonical DNS name byte");
    if (++label > kMaxLabelLen)
      return Result<void>(Errc::malformed, "DNS label too long");
  }
  if (label == 0)  // trailing dot (or lone dot)
    return Result<void>(Errc::malformed, "empty DNS label");
  return Result<void>::success();
}

Result<void> encode_name(wire::MsgWriter& w, std::string_view name) {
  auto r = for_each_label(name, [&](std::string_view label) {
    w.u8(static_cast<std::uint8_t>(label.size()));
    w.raw(ByteSpan(reinterpret_cast<const std::uint8_t*>(label.data()),
                   label.size()));
  });
  if (!r) return r;
  w.u8(0);  // root
  return Result<void>::success();
}

Result<void> encode_name(wire::Writer& w, std::string_view name) {
  auto r = for_each_label(name, [&](std::string_view label) {
    w.u8(static_cast<std::uint8_t>(label.size()));
    w.raw(ByteSpan(reinterpret_cast<const std::uint8_t*>(label.data()),
                   label.size()));
  });
  if (!r) return r;
  w.u8(0);
  return Result<void>::success();
}

Result<std::string> decode_name(wire::Reader& r) {
  std::string out;
  std::size_t encoded = 0;
  for (;;) {
    auto len = r.u8();
    if (!len) return len.error();
    ++encoded;
    if (*len == 0) break;
    if (*len > kMaxLabelLen)
      return Result<std::string>(Errc::malformed, "DNS label too long");
    encoded += *len;
    if (encoded > kMaxNameLen)
      return Result<std::string>(Errc::malformed, "DNS name too long");
    auto label = r.raw(*len);
    if (!label) return label.error();
    if (!out.empty()) out.push_back('.');
    for (const std::uint8_t b : *label) {
      if (!canonical_char(static_cast<char>(b)))
        return Result<std::string>(Errc::malformed,
                                   "non-canonical DNS name byte");
      out.push_back(static_cast<char>(b));
    }
  }
  if (out.empty())
    return Result<std::string>(Errc::malformed, "empty DNS name");
  return out;
}

// ---- QueryFrame --------------------------------------------------------------

Result<void> QueryFrame::encode(wire::MsgWriter& w) const {
  if (auto ok = validate_name(name); !ok) return ok;
  w.u8(kKindQuery);
  w.u16(id);
  return encode_name(w, name);
}

Result<QueryFrame> QueryFrame::decode(wire::MsgReader& r) {
  auto kind = r.u8();
  if (!kind) return kind.error();
  if (*kind != kKindQuery)
    return Result<QueryFrame>(Errc::malformed, "not a DNS query frame");
  auto id = r.u16();
  if (!id) return id.error();
  auto name = decode_name(r);
  if (!name) return name.error();
  QueryFrame q;
  q.id = *id;
  q.name = std::move(*name);
  return q;
}

Result<Bytes> QueryFrame::serialize() const {
  if (auto ok = validate_name(name); !ok) return ok.error();
  wire::Writer w;
  w.u8(kKindQuery);
  w.u16(id);
  if (auto ok = encode_name(w, name); !ok) return ok.error();
  return w.take();
}

Result<QueryFrame> QueryFrame::parse(ByteSpan data) {
  wire::MsgReader r(data);
  auto q = decode(r);
  if (!q) return q;
  if (!r.done())
    return Result<QueryFrame>(Errc::malformed, "trailing bytes in DNS query");
  return q;
}

// ---- ResponseFrame -----------------------------------------------------------

Result<void> ResponseFrame::encode(wire::MsgWriter& w) const {
  if (auto ok = validate_name(name); !ok) return ok;
  if (record.has_value() != (rcode == Rcode::ok))
    return Result<void>(Errc::malformed, "record/rcode mismatch");
  w.u8(kKindResponse);
  w.u16(id);
  w.u8(static_cast<std::uint8_t>(rcode));
  w.u32(ttl);
  if (auto ok = encode_name(w, name); !ok) return ok;
  w.u8(record ? 1 : 0);
  if (record) record->encode(w);
  return Result<void>::success();
}

Result<ResponseFrame> ResponseFrame::decode(wire::MsgReader& r) {
  auto kind = r.u8();
  if (!kind) return kind.error();
  if (*kind != kKindResponse)
    return Result<ResponseFrame>(Errc::malformed, "not a DNS response frame");
  auto id = r.u16();
  if (!id) return id.error();
  auto rcode = r.u8();
  if (!rcode) return rcode.error();
  if (!rcode_valid(*rcode))
    return Result<ResponseFrame>(Errc::malformed, "bad DNS rcode");
  auto ttl = r.u32();
  if (!ttl) return ttl.error();
  auto name = decode_name(r);
  if (!name) return name.error();
  auto has_record = r.u8();
  if (!has_record) return has_record.error();
  if (*has_record > 1)
    return Result<ResponseFrame>(Errc::malformed, "bad record marker");
  if ((*has_record == 1) != (*rcode == 0))
    return Result<ResponseFrame>(Errc::malformed, "record/rcode mismatch");
  ResponseFrame resp;
  resp.id = *id;
  resp.rcode = static_cast<Rcode>(*rcode);
  resp.ttl = *ttl;
  resp.name = std::move(*name);
  if (*has_record) {
    auto rec = core::DnsRecord::decode(r);
    if (!rec) return rec.error();
    resp.record = std::move(*rec);
  }
  return resp;
}

Result<Bytes> ResponseFrame::serialize() const {
  if (auto ok = validate_name(name); !ok) return ok.error();
  if (record.has_value() != (rcode == Rcode::ok))
    return Result<Bytes>(Errc::malformed, "record/rcode mismatch");
  wire::Writer w;
  w.u8(kKindResponse);
  w.u16(id);
  w.u8(static_cast<std::uint8_t>(rcode));
  w.u32(ttl);
  if (auto ok = encode_name(w, name); !ok) return ok.error();
  w.u8(record ? 1 : 0);
  Bytes out = w.take();
  if (record) {
    const Bytes rec = record->serialize();
    out.insert(out.end(), rec.begin(), rec.end());
  }
  return out;
}

Result<ResponseFrame> ResponseFrame::parse(ByteSpan data) {
  wire::MsgReader r(data);
  auto resp = decode(r);
  if (!resp) return resp;
  if (!r.done())
    return Result<ResponseFrame>(Errc::malformed,
                                 "trailing bytes in DNS response");
  return resp;
}

}  // namespace apna::dns

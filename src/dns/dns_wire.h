// DNS wire-format codec (§VII-A) — canonical, compression-free frames.
//
// The resolver-to-resolver forwarding path (dns/resolver.h) and the codec
// tests speak these frames; names use the classic DNS label encoding
// ([len][label]...[0], label ≤ 63 bytes, whole encoded name ≤ 255 bytes)
// with NO compression pointers: every frame is position-independent and a
// decoder never chases offsets, so truncation/mutation can only fail
// cleanly (pinned by the per-byte truncation tests).
//
// Canonical form (RFC 4034 §6.2 spirit): names are lowercase, dotted,
// without the trailing root dot. encode_name REJECTS non-canonical input
// rather than folding silently — callers canonicalize once at the edge
// (canonical_name) and everything below the resolver entry point compares
// bytes.
//
// Dual codec, same convention as core/messages.h: encode(MsgWriter&)/
// decode(MsgReader&) is the pooled hot path; serialize()/parse(ByteSpan)
// is the heap-allocating REFERENCE codec. The two are byte-identical,
// pinned by dns_test the way control_plane_test pins control messages.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/messages.h"
#include "util/bytes.h"
#include "util/result.h"
#include "wire/codec.h"
#include "wire/msg_codec.h"

namespace apna::dns {

/// Longest single label, in bytes (the length byte holds 0..63).
inline constexpr std::size_t kMaxLabelLen = 63;
/// Longest whole encoded name, in bytes, including every length byte and
/// the root terminator.
inline constexpr std::size_t kMaxNameLen = 255;

/// Encoded size of a valid dotted name: one length byte per label plus the
/// label bytes plus the root terminator = dotted size + 2.
constexpr std::size_t encoded_name_size(std::string_view dotted) {
  return dotted.size() + 2;
}

/// Lowercases ASCII — the one canonicalization step. Resolver entry points
/// call this once; everything below compares bytes.
std::string canonical_name(std::string_view name);

/// Canonical-form check: non-empty, no empty labels (leading/trailing/
/// double dots), labels ≤ 63 bytes, encoded form ≤ 255 bytes, characters
/// limited to lowercase ASCII letters, digits, '-' and '_'.
Result<void> validate_name(std::string_view name);

/// Label-encodes `name` ([len][label]...[0]). Fails (writing nothing) on
/// non-canonical input.
Result<void> encode_name(wire::MsgWriter& w, std::string_view name);
/// Reference twin (byte-identical output).
Result<void> encode_name(wire::Writer& w, std::string_view name);

/// Decodes one label-encoded name back to canonical dotted form. Rejects
/// oversize labels/names, empty root-only names, non-canonical bytes and
/// truncation. (wire::MsgReader derives from wire::Reader, so this is the
/// decoder for both codec paths.)
Result<std::string> decode_name(wire::Reader& r);

/// Response codes (the classic RCODE values we model).
enum class Rcode : std::uint8_t {
  ok = 0,
  servfail = 2,  // upstream timeout/backoff exhausted — never cached
  nxdomain = 3,  // negative answer — cached with a bounded TTL
  refused = 5,   // domain-policy block (dns/domain_trie.h)
};

/// True for the RCODE values a decoder accepts.
constexpr bool rcode_valid(std::uint8_t v) {
  return v == 0 || v == 2 || v == 3 || v == 5;
}

/// One forwarded question: [kind=0][id][qname].
struct QueryFrame {
  std::uint16_t id = 0;  // pending-table key at the forwarding resolver
  std::string name;      // canonical dotted form

  Result<void> encode(wire::MsgWriter& w) const;
  static Result<QueryFrame> decode(wire::MsgReader& r);
  Result<Bytes> serialize() const;
  static Result<QueryFrame> parse(ByteSpan data);
};

/// One answer: [kind=1][id][rcode][ttl][qname][has_record][record?].
/// The question name rides along so the querier can match answers against
/// its pending table by (id, name) — a stale or forged id alone never
/// fills the cache. A record is present iff rcode == ok.
struct ResponseFrame {
  std::uint16_t id = 0;
  Rcode rcode = Rcode::ok;
  std::uint32_t ttl = 0;  // positive TTL, or the negative bound for NXDOMAIN
  std::string name;       // echo of the question, canonical dotted form
  std::optional<core::DnsRecord> record;

  Result<void> encode(wire::MsgWriter& w) const;
  static Result<ResponseFrame> decode(wire::MsgReader& r);
  Result<Bytes> serialize() const;
  static Result<ResponseFrame> parse(ByteSpan data);
};

}  // namespace apna::dns

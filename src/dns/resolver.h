// Sharded DNS resolver (§VII-A) — zone + TTL cache + domain policy +
// upstream forwarding.
//
// Resolution order (resolve / resolve_async):
//   1. canonicalize + validate the name (dns_wire.h canonical form);
//   2. domain policy (dns/domain_trie.h longest-parent-suffix): block rules
//      answer `blocked` without touching zone or cache, monitor rules count
//      the lookup (the "sensitive domain" observability from PAPERS.md) and
//      fall through;
//   3. sharded TTL cache (dns/dns_cache.h), positive and negative entries,
//      invalidated by the zone's VerdictEpoch;
//   4. the authoritative zone (services/dns_zone.h) through the borrow
//      path; hits fill the cache, misses fill the NEGATIVE cache — or, in
//      resolve_async with an upstream wired, forward a QueryFrame with
//      deterministic timeout/backoff retransmits over net::EventLoop
//      timers, answering `servfail` (never cached) when attempts run out.
//
// Epoch discipline: the zone generation is read BEFORE the zone lookup and
// stamped into the cache entry, so a concurrent zone update either lands
// before the read (we cache the new truth) or bumps the epoch past our
// stamp (the entry is stillborn and the next lookup re-reads the zone).
//
// Thread-safety: resolve() and stats() are safe from any thread (that is
// what ResolverPool fans out). The async/upstream surface — resolve_async,
// on_upstream_frame, set_upstream — is event-loop-resident, same rule as
// ServiceDispatcher. block_domain and policy mutation take the policy's
// writer lock and may run from any thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/messages.h"
#include "crypto/rng.h"
#include "dns/dns_cache.h"
#include "dns/dns_wire.h"
#include "dns/domain_trie.h"
#include "net/sim.h"
#include "persist/sink.h"
#include "services/accountability_agent.h"
#include "services/dns_zone.h"
#include "util/bytes.h"
#include "util/result.h"

namespace apna::dns {

/// One per-domain rule. Longest (most specific) rule wins, so a monitor
/// rule under a blocked parent acts as an override.
struct DomainRule {
  enum class Action : std::uint8_t { block = 0, monitor = 1 };
  Action action = Action::block;
};

/// Trie-backed policy: the concrete services::DomainPolicy the
/// AccountabilityAgent consumes (set_domain_policy), shared with the
/// resolver's lookup path. Reader-writer locked: blocked()/match() take
/// the shared lock, rule mutation the exclusive one.
class DomainPolicy final : public services::DomainPolicy {
 public:
  void block(std::string_view domain) {
    std::unique_lock lock(mu_);
    trie_.insert(domain, DomainRule{DomainRule::Action::block});
  }
  void monitor(std::string_view domain) {
    std::unique_lock lock(mu_);
    trie_.insert(domain, DomainRule{DomainRule::Action::monitor});
  }
  bool erase(std::string_view domain) {
    std::unique_lock lock(mu_);
    return trie_.erase(domain);
  }

  // services::DomainPolicy
  bool blocked(std::string_view name, std::string* matched) const override {
    std::shared_lock lock(mu_);
    const DomainRule* rule = trie_.match(name, matched);
    return rule != nullptr && rule->action == DomainRule::Action::block;
  }

  /// The matched rule (block or monitor), if any — copy-out.
  std::optional<DomainRule> match(std::string_view name,
                                  std::string* matched = nullptr) const {
    std::shared_lock lock(mu_);
    const DomainRule* rule = trie_.match(name, matched);
    if (rule == nullptr) return std::nullopt;
    return *rule;
  }

  std::size_t rules() const {
    std::shared_lock lock(mu_);
    return trie_.size();
  }
  std::size_t memory_bytes() const {
    std::shared_lock lock(mu_);
    return trie_.memory_bytes();
  }

 private:
  mutable std::shared_mutex mu_;
  DomainTrie<DomainRule> trie_;
};

class Resolver {
 public:
  struct Config {
    DnsCache::Config cache;
    /// TTL stamped on zone-derived positive answers, seconds.
    core::ExpTime positive_ttl = 300;
    /// TTL requested for negative answers (the cache clamps it further).
    core::ExpTime negative_ttl = 30;
    /// First-attempt upstream timeout; each retransmit multiplies it by
    /// backoff_factor.
    net::TimeUs upstream_timeout = 250'000;
    std::uint32_t upstream_attempts = 3;  // 1 initial + 2 retransmits
    std::uint32_t backoff_factor = 2;
  };

  /// Plain copyable counters — what stats() returns.
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t invalid_name = 0;
    std::uint64_t policy_blocked = 0;
    std::uint64_t monitored = 0;        // sensitive-domain lookups observed
    std::uint64_t cache_hits = 0;
    std::uint64_t negative_hits = 0;
    std::uint64_t zone_hits = 0;
    std::uint64_t nxdomain = 0;         // authoritative negative answers
    std::uint64_t publish_blocked = 0;  // admissions refused by policy
    std::uint64_t forwarded = 0;        // queries sent upstream
    std::uint64_t retransmits = 0;
    std::uint64_t upstream_answers = 0;
    std::uint64_t upstream_nxdomain = 0;
    std::uint64_t upstream_timeouts = 0;   // attempts exhausted → servfail
    std::uint64_t upstream_mismatched = 0; // unmatched/ill-formed responses
  };

  enum class Status : std::uint8_t {
    ok = 0,
    nxdomain = 1,
    blocked = 2,   // domain policy refused the lookup
    servfail = 3,  // upstream attempts exhausted — never cached
    invalid = 4,   // not a canonicalizable DNS name
  };
  enum class Source : std::uint8_t {
    none = 0,
    cache = 1,
    negative_cache = 2,
    zone = 3,
    upstream = 4,
    policy = 5,
  };

  struct Answer {
    Status status = Status::nxdomain;
    Source source = Source::none;
    core::DnsRecord record;  // meaningful iff status == ok
  };

  using AnswerFn = std::function<void(const Answer&)>;
  /// Carries one serialized QueryFrame toward the upstream resolver.
  using UpstreamSend = std::function<void(Bytes)>;

  Resolver(services::DnsZone& zone, net::EventLoop& loop, const Config& cfg)
      : cfg_(cfg), zone_(zone), loop_(loop), cache_(cfg.cache, zone.epoch()) {}

  /// Synchronous, authoritative-mode lookup: policy → cache → zone; a zone
  /// miss is a cacheable NXDOMAIN. Thread-safe — this is the path
  /// ResolverPool fans out.
  Answer resolve(std::string_view name, core::ExpTime now);

  /// Async lookup: same as resolve() until the zone misses; then, with an
  /// upstream wired, forwards and answers via `done` when the response or
  /// the final timeout lands. Without an upstream, behaves exactly like
  /// resolve(). `done` may fire inline (cache/zone answers) or from a
  /// later event-loop turn. Event-loop thread only.
  void resolve_async(std::string_view name, AnswerFn done);

  /// Wires the upstream transport (null = authoritative mode).
  void set_upstream(UpstreamSend send) { upstream_ = std::move(send); }
  /// Feeds a serialized ResponseFrame back from the upstream transport.
  void on_upstream_frame(ByteSpan frame);
  /// Serves the upstream role: answers one serialized QueryFrame with a
  /// serialized ResponseFrame (empty on unparseable input — drop it).
  Bytes answer_query(ByteSpan query_frame);

  /// Publication admission: canonical-name check plus domain policy. With
  /// an AccountabilityAgent wired, a blocked name is enforced through the
  /// Fig-5 tail (the publishing EphID is revoked if this AS issued it).
  Result<void> admit_publish(std::string_view name, const core::EphId& ephid,
                             core::ExpTime now);

  /// Installs a block rule and SWEEPS the zone: every record at or under
  /// `domain` is enforced through the AA (revocation) and erased — each
  /// erase bumps the zone epoch, so cached answers for the domain die too.
  /// Returns the number of records swept.
  std::size_t block_domain(std::string_view domain, core::ExpTime now);

  void set_accountability(services::AccountabilityAgent* aa) { aa_ = aa; }
  services::AccountabilityAgent* accountability() const { return aa_; }

  /// Attaches the durability hook: block_domain rules are journaled (the
  /// zone erases and revocations the sweep causes emit their own records
  /// at their own mutation sites). nullptr = no-op.
  void set_persist_sink(persist::Sink* sink) { persist_ = sink; }

  DomainPolicy& policy() { return policy_; }
  const DomainPolicy& policy() const { return policy_; }
  services::DnsZone& zone() { return zone_; }
  DnsCache& cache() { return cache_; }
  const DnsCache& cache() const { return cache_; }
  const Config& config() const { return cfg_; }

  Stats stats() const;

 private:
  struct Pending {
    std::string name;
    AnswerFn done;
    std::uint32_t attempts_left = 0;
    net::TimeUs timeout = 0;
    std::uint64_t serial = 0;  // stale-timer guard (timers can't be revoked)
  };

  /// Shared front half of resolve/resolve_async: policy + cache + zone.
  /// Returns false when the name missed everywhere locally (the forwarding
  /// case), with `canon` holding the canonical name.
  bool resolve_local(std::string_view name, core::ExpTime now,
                     bool authoritative, std::string& canon, Answer& out);

  void send_query(std::uint16_t id, Pending& p);
  void arm_timeout(std::uint16_t id, std::uint64_t serial,
                   net::TimeUs delay);

  Config cfg_;
  services::DnsZone& zone_;
  net::EventLoop& loop_;
  DnsCache cache_;
  DomainPolicy policy_;
  services::AccountabilityAgent* aa_ = nullptr;
  persist::Sink* persist_ = nullptr;
  UpstreamSend upstream_;

  // Pending upstream queries (event-loop thread only).
  std::unordered_map<std::uint16_t, Pending> pending_;
  std::uint16_t next_id_ = 1;
  std::uint64_t next_serial_ = 1;

  struct Counters {
    std::atomic<std::uint64_t> lookups{0};
    std::atomic<std::uint64_t> invalid_name{0};
    std::atomic<std::uint64_t> policy_blocked{0};
    std::atomic<std::uint64_t> monitored{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> negative_hits{0};
    std::atomic<std::uint64_t> zone_hits{0};
    std::atomic<std::uint64_t> nxdomain{0};
    std::atomic<std::uint64_t> publish_blocked{0};
    std::atomic<std::uint64_t> forwarded{0};
    std::atomic<std::uint64_t> retransmits{0};
    std::atomic<std::uint64_t> upstream_answers{0};
    std::atomic<std::uint64_t> upstream_nxdomain{0};
    std::atomic<std::uint64_t> upstream_timeouts{0};
    std::atomic<std::uint64_t> upstream_mismatched{0};
  };
  Counters counters_;
};

/// M-worker lookup pool, modeled on services::ServicePool: Config::threads
/// is the TOTAL parallelism (threads-1 background workers plus the calling
/// thread claiming chunks), per-worker Stats slots merged on read, and
/// results independent of worker count — resolve() is deterministic given
/// the cache state, and out[i] always holds the answer for names[i].
/// One in-flight burst at a time; the resolver itself is what makes the
/// concurrent lookups safe.
class ResolverPool {
 public:
  struct Config {
    /// Total processing threads (calling thread included). 0 → one per
    /// hardware thread.
    std::size_t threads = 0;
    /// Lookups per claim unit.
    std::size_t chunk = 64;
    /// Seed for the per-SLOT worker DRBGs (HmacDrbg(rng_seed, slot)):
    /// worker-private randomness with zero cross-thread contention (query
    /// jitter, future 0x20-mixing). Lookup RESULTS never depend on it.
    std::uint64_t rng_seed = 0xd15ea5e;
  };

  /// Plain copyable counters, merged across worker slots on read.
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t ok = 0;
    std::uint64_t nxdomain = 0;
    std::uint64_t blocked = 0;
    std::uint64_t cache_hits = 0;
  };

  ResolverPool(Resolver& resolver, Config cfg);
  ~ResolverPool();

  ResolverPool(const ResolverPool&) = delete;
  ResolverPool& operator=(const ResolverPool&) = delete;

  /// Resolves the whole burst across all processing threads; out[i] is the
  /// answer for names[i]. Blocks until done.
  void process_lookups(std::span<const std::string> names, core::ExpTime now,
                       std::span<Resolver::Answer> out);

  Stats stats() const;
  std::size_t threads() const { return cfg_.threads; }

  /// The given slot's private DRBG (tests and TSan stress only — workers
  /// reach their own slot directly).
  crypto::Rng& slot_rng(std::size_t slot) { return *slots_[slot].drbg; }

 private:
  void worker_main(std::size_t slot);
  void drain_chunks(std::size_t slot);
  void process_chunk(std::size_t slot, std::size_t begin, std::size_t end);

  struct alignas(64) Slot {
    mutable std::mutex mu;
    Stats stats;
    /// Worker-private crypto::HmacDrbg(rng_seed, slot) — never shared
    /// across slots (crypto_concurrency_test stresses this under TSan).
    std::unique_ptr<crypto::Rng> drbg;
  };

  Resolver& resolver_;
  Config cfg_;

  // Burst descriptor, guarded by mu_ (ServicePool ordering argument).
  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::string* names_ = nullptr;
  std::size_t names_n_ = 0;
  Resolver::Answer* out_ = nullptr;
  core::ExpTime now_ = 0;
  std::size_t next_chunk_ = 0;
  std::size_t chunks_done_ = 0;
  std::size_t chunks_total_ = 0;
  bool stop_ = false;

  std::unique_ptr<Slot[]> slots_;
  std::vector<std::thread> workers_;
};

}  // namespace apna::dns

// DNS service (§VII-A) — the session-facing front of the resolver.
//
// Queries and publications run over ordinary APNA encrypted sessions —
// "DNS queries are encrypted just like any other data communication" — so
// only the DNS server and the querying host see names. Record signatures
// by the DNS service's EphID key stand in for DNSSEC.
//
// Rewritten (ROADMAP item 2) on top of the dns subsystem: every lookup
// goes through dns::Resolver (domain policy → sharded TTL/negative cache →
// shared zone), publications are admitted through the AccountabilityAgent's
// DomainPolicy hook before they are signed into the zone, and the session
// frame ops keep the original one-byte codes (host/host.cpp mirrors them).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/as_state.h"
#include "core/handshake.h"
#include "core/messages.h"
#include "crypto/rng.h"
#include "dns/resolver.h"
#include "net/sim.h"
#include "services/service_identity.h"
#include "services/service_runtime.h"
#include "wire/packet_buf.h"

namespace apna::dns {

/// Session-layer operation codes carried in DNS data frames.
enum class DnsOp : std::uint8_t { query = 0, publish = 1, response = 2 };

class DnsService : public services::ControlService {
 public:
  /// Plain copyable counters — what stats() returns.
  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t nxdomain = 0;
    std::uint64_t blocked = 0;  // domain-policy refusals (query or publish)
    std::uint64_t publications = 0;
    std::uint64_t sessions = 0;
    std::uint64_t rejected = 0;
  };

  DnsService(core::AsState& as, const core::AsDirectory& directory,
             net::EventLoop& loop, crypto::Rng& rng,
             services::ServiceIdentity ident, Resolver& resolver)
      : as_(as),
        directory_(directory),
        loop_(loop),
        rng_(rng),
        ident_(std::move(ident)),
        resolver_(resolver) {}

  // ---- ControlService --------------------------------------------------------
  const core::EphId& service_ephid() const override {
    return ident_.cert.ephid;
  }
  core::Hid service_hid() const override { return ident_.hid; }
  const char* service_name() const override { return "dns"; }

  /// Handshake or data packet addressed to the DNS EphID. Returns the
  /// sealed reply (handshake response, or a DnsResponse/status frame).
  Result<wire::PacketBuf> handle_packet(const wire::PacketView& pkt) override;

  /// Signs a record under the DNS service key (DNSSEC stand-in).
  core::DnsRecord sign_record(const std::string& name,
                              const core::EphIdCertificate& cert,
                              std::uint32_t ipv4) const;

  /// Local-resolver conveniences (in-AS callers and tests). Response
  /// status: 0 ok, 1 NXDOMAIN, 2 refused (domain policy), 3 servfail.
  Result<core::DnsResponse> resolve(const core::DnsQuery& q);
  Result<void> publish(const core::DnsPublish& p);

  Resolver& resolver() { return resolver_; }
  const core::EphIdCertificate& cert() const { return ident_.cert; }
  const services::ServiceIdentity& identity() const { return ident_; }
  const crypto::Ed25519PublicKey& record_key() const {
    return ident_.kp.pub.sig;
  }
  Stats stats() const {
    Stats s;
    s.queries = counters_.queries.load(std::memory_order_relaxed);
    s.nxdomain = counters_.nxdomain.load(std::memory_order_relaxed);
    s.blocked = counters_.blocked.load(std::memory_order_relaxed);
    s.publications = counters_.publications.load(std::memory_order_relaxed);
    s.sessions = counters_.sessions.load(std::memory_order_relaxed);
    s.rejected = counters_.rejected.load(std::memory_order_relaxed);
    return s;
  }

 private:
  wire::PacketBuf make_reply(const wire::PacketView& req,
                             wire::NextProto proto, ByteSpan payload) const;
  Result<Bytes> handle_op(ByteSpan plaintext);

  struct Counters {
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> nxdomain{0};
    std::atomic<std::uint64_t> blocked{0};
    std::atomic<std::uint64_t> publications{0};
    std::atomic<std::uint64_t> sessions{0};
    std::atomic<std::uint64_t> rejected{0};
  };

  core::AsState& as_;
  const core::AsDirectory& directory_;
  net::EventLoop& loop_;
  crypto::Rng& rng_;
  services::ServiceIdentity ident_;
  Resolver& resolver_;
  Counters counters_;
  std::uint64_t nonce_ = 1;
  // Live sessions keyed by client EphID.
  std::unordered_map<core::EphId, core::Session, core::EphIdHash> sessions_;
};

}  // namespace apna::dns

#include "dns/dns_service.h"

#include "core/packet_auth.h"
#include "dns/dns_wire.h"
#include "wire/msg_codec.h"

namespace apna::dns {

core::DnsRecord DnsService::sign_record(const std::string& name,
                                        const core::EphIdCertificate& cert,
                                        std::uint32_t ipv4) const {
  core::DnsRecord rec;
  rec.name = name;
  rec.cert = cert;
  rec.ipv4 = ipv4;
  wire::MsgWriter tbs(256);
  rec.tbs_into(tbs);
  rec.sig = ident_.kp.sign(tbs.span());
  return rec;
}

Result<core::DnsResponse> DnsService::resolve(const core::DnsQuery& q) {
  ++counters_.queries;
  core::DnsResponse resp;
  const Resolver::Answer a = resolver_.resolve(q.name, loop_.now_seconds());
  switch (a.status) {
    case Resolver::Status::ok: {
      resp.status = 0;
      resp.record = a.record;
      // Validating-resolver model: the zone entry was signed by the DNS
      // service that accepted the publication; the serving resolver
      // re-signs so clients verify against the key of the server they
      // actually speak to (the DNSSEC chain stand-in ends at the
      // resolver). Ed25519 is deterministic, so a cached answer re-signs
      // byte-identically to an uncached one.
      wire::MsgWriter tbs(256);
      resp.record->tbs_into(tbs);
      resp.record->sig = ident_.kp.sign(tbs.span());
      break;
    }
    case Resolver::Status::nxdomain:
      ++counters_.nxdomain;
      resp.status = 1;
      break;
    case Resolver::Status::blocked:
      ++counters_.blocked;
      resp.status = 2;
      break;
    case Resolver::Status::servfail:
    case Resolver::Status::invalid:
      ++counters_.rejected;
      resp.status = 3;
      break;
  }
  return resp;
}

Result<void> DnsService::publish(const core::DnsPublish& p) {
  // The published certificate must be valid and issued by a known AS; the
  // DNS then re-signs the record (the DNSSEC chain).
  const core::ExpTime now = loop_.now_seconds();
  if (auto ok = core::validate_peer_cert(p.cert, directory_, now); !ok) {
    ++counters_.rejected;
    return ok;
  }
  // Records land in the zone in canonical form so lookups and policy see
  // one spelling per name.
  const std::string canon = canonical_name(p.name);
  if (auto ok = resolver_.admit_publish(canon, p.cert.ephid, now); !ok) {
    if (ok.code() == Errc::unauthorized)
      ++counters_.blocked;
    else
      ++counters_.rejected;
    return ok;
  }
  resolver_.zone().put(sign_record(canon, p.cert, p.ipv4));
  ++counters_.publications;
  return Result<void>::success();
}

Result<Bytes> DnsService::handle_op(ByteSpan plaintext) {
  wire::MsgReader r(plaintext);
  auto op = r.u8();
  if (!op) return op.error();
  switch (static_cast<DnsOp>(*op)) {
    case DnsOp::query: {
      auto q = core::decode_msg<core::DnsQuery>(r.rest());
      if (!q) return q.error();
      auto resp = resolve(*q);
      if (!resp) return resp.error();
      wire::MsgWriter w(400);
      w.u8(static_cast<std::uint8_t>(DnsOp::response));
      resp->encode(w);
      return w.take();
    }
    case DnsOp::publish: {
      auto p = core::decode_msg<core::DnsPublish>(r.rest());
      if (!p) return p.error();
      const auto result = publish(*p);
      wire::MsgWriter w(2);
      w.u8(static_cast<std::uint8_t>(DnsOp::response));
      w.u8(static_cast<std::uint8_t>(result.code()));
      return w.take();
    }
    case DnsOp::response:
      break;
  }
  return Result<Bytes>(Errc::malformed, "unexpected DNS op");
}

wire::PacketBuf DnsService::make_reply(const wire::PacketView& req,
                                       wire::NextProto proto,
                                       ByteSpan payload) const {
  wire::PacketWriter pw(as_.aid, ident_.cert.ephid.bytes, req.src_aid(),
                        req.src_ephid(), proto, std::nullopt, payload.size());
  pw.raw(payload);
  wire::PacketBuf out = pw.finish();
  core::stamp_packet_mac(*ident_.cmac, out);
  return out;
}

Result<wire::PacketBuf> DnsService::handle_packet(
    const wire::PacketView& pkt) {
  const core::ExpTime now = loop_.now_seconds();

  if (pkt.proto() == wire::NextProto::handshake) {
    // Handshake payloads carry a one-byte kind prefix (0 = init, 1 = resp).
    wire::MsgReader hr(pkt);
    auto kind = hr.u8();
    if (!kind || *kind != 0) {
      ++counters_.rejected;
      return Result<wire::PacketBuf>(Errc::malformed,
                                     "expected handshake init");
    }
    auto init = core::HandshakeInit::decode(hr);
    if (!init || !hr.done()) {
      ++counters_.rejected;
      return Result<wire::PacketBuf>(Errc::malformed, "bad handshake init");
    }
    // The DNS service serves directly from its service EphID.
    auto hs = core::handshake_respond(*init, directory_, now, ident_.kp,
                                      ident_.cert, ident_.kp, ident_.cert,
                                      rng_.next_u64());
    if (!hs) {
      ++counters_.rejected;
      return Result<wire::PacketBuf>(hs.error());
    }
    core::EphId client;
    client.bytes = pkt.src_ephid();
    sessions_.erase(client);
    sessions_.emplace(client, std::move(hs->session));
    ++counters_.sessions;

    // The handshake response encodes directly into the reply packet.
    wire::PacketWriter pw(as_.aid, ident_.cert.ephid.bytes, pkt.src_aid(),
                          pkt.src_ephid(), wire::NextProto::handshake);
    pw.u8(1);  // handshake response kind
    hs->response.encode(pw);
    wire::PacketBuf out = pw.finish();
    core::stamp_packet_mac(*ident_.cmac, out);
    return out;
  }

  if (pkt.proto() == wire::NextProto::data) {
    core::EphId client;
    client.bytes = pkt.src_ephid();
    auto it = sessions_.find(client);
    if (it == sessions_.end()) {
      ++counters_.rejected;
      return Result<wire::PacketBuf>(Errc::not_found, "no session for client");
    }
    auto pt = it->second.open(pkt.payload());
    if (!pt) {
      ++counters_.rejected;
      return Result<wire::PacketBuf>(pt.error());
    }
    auto reply = handle_op(*pt);
    if (!reply) {
      ++counters_.rejected;
      return Result<wire::PacketBuf>(reply.error());
    }
    const Bytes sealed = it->second.seal(*reply);
    return make_reply(pkt, wire::NextProto::data, sealed);
  }

  ++counters_.rejected;
  return Result<wire::PacketBuf>(Errc::malformed, "DNS expects handshake/data");
}

}  // namespace apna::dns

#include "dns/udp_upstream.h"

#include <utility>

#include "wire/msg_codec.h"

namespace apna::dns {
namespace {

/// Infrastructure-to-infrastructure control traffic carries no host
/// EphIDs; the all-zero EphID is never issued (E_kA output of a real
/// (HID, T) pair), so it cannot collide with host traffic.
const wire::EphIdBytes kInfraEphid{};

wire::PacketBuf wrap_frame(wire::Aid src_aid, wire::Aid dst_aid,
                           const wire::EphIdBytes& dst_ephid, ByteSpan frame) {
  wire::PacketWriter pw(src_aid, kInfraEphid, dst_aid, dst_ephid,
                        wire::NextProto::control, std::nullopt, frame.size());
  pw.raw(frame);
  return pw.finish();
}

}  // namespace

// ---------------------------------------------------------------------------
// Client

void UdpUpstream::attach(Resolver& resolver) {
  resolver_ = &resolver;
  resolver.set_upstream([this](Bytes frame) { send_frame(std::move(frame)); });
  transport_.set_rx([this](net::PeerId, wire::PacketBuf pkt) {
    if (pkt.view().proto() != wire::NextProto::control) {
      ++stats_.frames_rejected;
      return;
    }
    ++stats_.responses_delivered;
    resolver_->on_upstream_frame(pkt.view().payload());
  });
}

void UdpUpstream::send_frame(Bytes frame) {
  auto sent = transport_.send(
      server_, wrap_frame(local_aid_, server_aid_, kInfraEphid,
                          ByteSpan(frame.data(), frame.size())));
  if (sent)
    ++stats_.queries_sent;
  else
    ++stats_.send_errors;  // resolver's retransmit timer covers the loss
}

// ---------------------------------------------------------------------------
// Server

void UdpUpstreamServer::attach(Resolver& resolver) {
  resolver_ = &resolver;
  transport_.set_rx([this](net::PeerId from, wire::PacketBuf pkt) {
    const wire::PacketView& v = pkt.view();
    if (v.proto() != wire::NextProto::control) {
      ++stats_.frames_rejected;
      return;
    }
    Bytes resp = resolver_->answer_query(v.payload());
    if (resp.empty()) {  // unparseable query — drop, exactly like real DNS
      ++stats_.frames_rejected;
      return;
    }
    ++stats_.queries_answered;
    auto sent = transport_.send(
        from, wrap_frame(local_aid_, v.src_aid(), v.src_ephid(),
                         ByteSpan(resp.data(), resp.size())));
    if (!sent) ++stats_.send_errors;
  });
}

}  // namespace apna::dns

// Real-socket upstream for the resolver (§VII-A forwarding mode).
//
// The resolver's upstream seam is a pair of byte-frame callbacks
// (UpstreamSend out, on_upstream_frame back in). This file points that
// seam at a net::Transport endpoint — normally a net::UdpTransport, so
// the QueryFrame/ResponseFrame exchange crosses a real kernel socket —
// without the resolver learning anything about datagrams.
//
// Framing: a DNS frame rides as the payload of an ordinary APNA control
// packet (wire::PacketWriter; zero EphIDs — the exchange is between
// infrastructure resolvers, not hosts). That keeps Transport::deliver's
// validation tail in force: a junk datagram dies in PacketView::bind and
// is counted by the transport, never parsed as DNS.
//
// Threading: both classes are event-loop-resident like the resolver's
// async surface — construct, attach and poll them from one thread.
#pragma once

#include <cstdint>

#include "dns/resolver.h"
#include "net/transport.h"
#include "util/bytes.h"

namespace apna::dns {

/// Client half: makes a Resolver forward zone misses to an upstream
/// resolver across `transport`. attach() installs both directions
/// (resolver.set_upstream and the transport's rx handler).
class UdpUpstream {
 public:
  struct Stats {
    std::uint64_t queries_sent = 0;
    std::uint64_t send_errors = 0;
    std::uint64_t responses_delivered = 0;
    std::uint64_t frames_rejected = 0;  // non-control packets dropped
  };

  UdpUpstream(net::Transport& transport, net::PeerId server,
              wire::Aid local_aid, wire::Aid server_aid)
      : transport_(transport),
        server_(server),
        local_aid_(local_aid),
        server_aid_(server_aid) {}

  void attach(Resolver& resolver);

  /// Drains inbound datagrams into resolver.on_upstream_frame. Returns
  /// packets the transport delivered during the call.
  std::size_t poll(int timeout_ms = 0) { return transport_.poll(timeout_ms); }

  const Stats& stats() const { return stats_; }

 private:
  void send_frame(Bytes frame);

  net::Transport& transport_;
  net::PeerId server_;
  wire::Aid local_aid_;
  wire::Aid server_aid_;
  Resolver* resolver_ = nullptr;
  Stats stats_;
};

/// Server half: answers QueryFrames arriving on `transport` out of a
/// Resolver (authoritative path — Resolver::answer_query), replying to
/// whichever peer asked.
class UdpUpstreamServer {
 public:
  struct Stats {
    std::uint64_t queries_answered = 0;
    std::uint64_t frames_rejected = 0;  // unparseable queries, dropped
    std::uint64_t send_errors = 0;
  };

  UdpUpstreamServer(net::Transport& transport, wire::Aid local_aid)
      : transport_(transport), local_aid_(local_aid) {}

  void attach(Resolver& resolver);

  /// Serves ready queries. Returns packets delivered during the call.
  std::size_t poll(int timeout_ms = 0) { return transport_.poll(timeout_ms); }

  const Stats& stats() const { return stats_; }

 private:
  net::Transport& transport_;
  wire::Aid local_aid_;
  Resolver* resolver_ = nullptr;
  Stats stats_;
};

}  // namespace apna::dns

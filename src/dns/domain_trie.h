// Compressed domain-name trie — longest-parent-suffix policy matching.
//
// Keys are dotted names walked label-by-label from the RIGHT (the DNS
// hierarchy): a rule at "evil.com" sits two labels deep and matches
// "evil.com" itself and every subdomain ("a.b.evil.com"), but never the
// sibling "notevil.com" — matching consumes whole labels, so there is no
// substring confusion. The most specific (deepest) rule wins, which gives
// allow/monitor overrides under a blocked parent for free.
//
// Compressed: single-child chains carry multi-label edges ("com.evil" in
// reversed order as one node), split on demand when a diverging rule is
// inserted — the radix-tree treatment, so a policy of N rules costs O(N)
// nodes regardless of how deep the rule domains are.
//
// Not thread-safe by itself; dns::DomainPolicy (resolver.h) wraps one trie
// in a shared_mutex for the concurrent lookup path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace apna::dns {

/// Splits a dotted name into labels, right-to-left ("a.evil.com" →
/// ["com", "evil", "a"]). Empty labels are dropped — callers validate
/// canonical form upstream (dns_wire.h validate_name).
inline std::vector<std::string_view> reversed_labels(std::string_view name) {
  std::vector<std::string_view> out;
  std::size_t end = name.size();
  while (end > 0) {
    std::size_t dot = name.rfind('.', end - 1);
    const std::size_t start = (dot == std::string_view::npos) ? 0 : dot + 1;
    if (end > start) out.push_back(name.substr(start, end - start));
    if (start == 0) break;
    end = dot;
  }
  return out;
}

template <class V>
class DomainTrie {
 public:
  DomainTrie() { nodes_.push_back(Node{}); }  // nodes_[0] = root, empty edge

  /// Inserts (or replaces) the rule at `domain`. Returns false for a name
  /// with no labels.
  bool insert(std::string_view domain, V value) {
    const auto labels = reversed_labels(domain);
    if (labels.empty()) return false;
    std::uint32_t node = walk_insert(labels);
    if (!nodes_[node].value) ++rules_;
    nodes_[node].value = std::move(value);
    nodes_[node].domain.assign(domain);
    return true;
  }

  /// Removes the rule at exactly `domain` (subdomain rules survive).
  /// Structural nodes stay — policy sets shrink rarely and the next insert
  /// reuses them.
  bool erase(std::string_view domain) {
    Node* n = find_exact(domain);
    if (!n || !n->value) return false;
    n->value.reset();
    n->domain.clear();
    --rules_;
    return true;
  }

  /// Longest-suffix match: the deepest rule at `name` or any parent
  /// domain, or nullptr. When matched, `*matched_domain` (if non-null)
  /// receives the rule's domain.
  const V* match(std::string_view name,
                 std::string* matched_domain = nullptr) const {
    const Node* best = nullptr;
    std::uint32_t node = 0;
    const auto labels = reversed_labels(name);
    std::size_t i = 0;
    while (i < labels.size()) {
      const std::uint32_t child = find_child(node, labels[i]);
      if (child == kNone) break;
      const Node& c = nodes_[child];
      // The whole (possibly multi-label) edge must match.
      std::size_t e = 0;
      for (; e < c.edge.size() && i + e < labels.size(); ++e)
        if (c.edge[e] != labels[i + e]) break;
      if (e < c.edge.size()) break;  // partial edge — no rule at/below here
      i += e;
      if (c.value) best = &c;
      node = child;
    }
    if (!best) return nullptr;
    if (matched_domain) *matched_domain = best->domain;
    return &*best->value;
  }

  /// The rule at exactly `domain`, or nullptr.
  const V* exact(std::string_view domain) const {
    const Node* n = const_cast<DomainTrie*>(this)->find_exact(domain);
    return (n && n->value) ? &*n->value : nullptr;
  }

  std::size_t size() const { return rules_; }
  std::size_t node_count() const { return nodes_.size(); }

  /// Modeled footprint: node vector plus the owned edge/domain strings.
  std::size_t memory_bytes() const {
    std::size_t b = sizeof(*this) + nodes_.capacity() * sizeof(Node);
    for (const Node& n : nodes_) {
      for (const std::string& l : n.edge) b += l.capacity();
      b += n.domain.capacity() + n.kids.capacity() * sizeof(std::uint32_t);
    }
    return b;
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Node {
    std::vector<std::string> edge;     // ≥1 labels, reversed order (root: 0)
    std::vector<std::uint32_t> kids;   // child indices, sorted by first label
    std::optional<V> value;
    std::string domain;                // original dotted form (valued nodes)
  };

  // Child lists stay sorted by their edge's first label (unique by the
  // radix invariant), so sibling fan-out under popular parents (".com"
  // with thousands of rules) costs a binary search, not a linear scan.
  std::vector<std::uint32_t>::const_iterator child_pos(
      const std::vector<std::uint32_t>& kids, std::string_view label) const {
    return std::lower_bound(kids.begin(), kids.end(), label,
                            [this](std::uint32_t k, std::string_view l) {
                              return std::string_view(nodes_[k].edge.front()) <
                                     l;
                            });
  }

  std::uint32_t find_child(std::uint32_t node, std::string_view label) const {
    const auto& kids = nodes_[node].kids;
    const auto it = child_pos(kids, label);
    if (it != kids.end() && nodes_[*it].edge.front() == label) return *it;
    return kNone;
  }

  void add_child(std::uint32_t node, std::uint32_t child) {
    auto& kids = nodes_[node].kids;
    kids.insert(child_pos(kids, nodes_[child].edge.front()), child);
  }

  /// Walks/extends the trie along `labels`, splitting compressed edges at
  /// divergence points, and returns the node ending exactly at the key.
  std::uint32_t walk_insert(const std::vector<std::string_view>& labels) {
    std::uint32_t node = 0;
    std::size_t i = 0;
    while (i < labels.size()) {
      const std::uint32_t child = find_child(node, labels[i]);
      if (child == kNone) {
        // New leaf carrying the whole remaining label run as one edge.
        Node leaf;
        for (std::size_t j = i; j < labels.size(); ++j)
          leaf.edge.emplace_back(labels[j]);
        nodes_.push_back(std::move(leaf));
        const auto idx = static_cast<std::uint32_t>(nodes_.size() - 1);
        add_child(node, idx);
        return idx;
      }
      // Shared-prefix length between the edge and the remaining key.
      std::size_t e = 0;
      {
        const Node& c = nodes_[child];
        for (; e < c.edge.size() && i + e < labels.size(); ++e)
          if (c.edge[e] != labels[i + e]) break;
      }
      if (e < nodes_[child].edge.size()) split(child, e);
      i += e;
      node = child;
    }
    return node;
  }

  /// Splits `node`'s edge after `keep` labels: the node keeps the prefix,
  /// a new child inherits the suffix, the kids, the value and the domain.
  void split(std::uint32_t node, std::size_t keep) {
    Node tail;
    Node& n = nodes_[node];
    tail.edge.assign(n.edge.begin() + static_cast<std::ptrdiff_t>(keep),
                     n.edge.end());
    n.edge.resize(keep);
    tail.kids = std::move(n.kids);
    tail.value = std::move(n.value);
    tail.domain = std::move(n.domain);
    n.kids.clear();
    n.value.reset();
    n.domain.clear();
    nodes_.push_back(std::move(tail));  // may reallocate; n is dangling now
    add_child(node, static_cast<std::uint32_t>(nodes_.size() - 1));
  }

  Node* find_exact(std::string_view domain) {
    const auto labels = reversed_labels(domain);
    std::uint32_t node = 0;
    std::size_t i = 0;
    while (i < labels.size()) {
      const std::uint32_t child = find_child(node, labels[i]);
      if (child == kNone) return nullptr;
      const Node& c = nodes_[child];
      if (c.edge.size() > labels.size() - i) return nullptr;
      for (std::size_t e = 0; e < c.edge.size(); ++e)
        if (c.edge[e] != labels[i + e]) return nullptr;
      i += c.edge.size();
      node = child;
    }
    return &nodes_[node];
  }

  std::vector<Node> nodes_;
  std::size_t rules_ = 0;
};

}  // namespace apna::dns

#include "dns/resolver.h"

#include <algorithm>
#include <cassert>

#include "core/as_persist.h"
#include "crypto/drbg.h"

namespace apna::dns {
namespace {

// True when `name` is already canonical — the zero-allocation fast path.
bool is_canonical(std::string_view name) {
  for (const char c : name)
    if (c >= 'A' && c <= 'Z') return false;
  return true;
}

}  // namespace

// ---- Resolver ----------------------------------------------------------------

bool Resolver::resolve_local(std::string_view name, core::ExpTime now,
                             bool authoritative, std::string& canon,
                             Answer& out) {
  counters_.lookups.fetch_add(1, std::memory_order_relaxed);

  std::string_view key = name;
  if (!is_canonical(name)) {
    canon = canonical_name(name);
    key = canon;
  }
  if (!validate_name(key)) {
    counters_.invalid_name.fetch_add(1, std::memory_order_relaxed);
    out.status = Status::invalid;
    out.source = Source::none;
    return true;
  }

  // Policy before any state: a blocked domain never warms the cache.
  if (auto rule = policy_.match(key)) {
    if (rule->action == DomainRule::Action::block) {
      counters_.policy_blocked.fetch_add(1, std::memory_order_relaxed);
      out.status = Status::blocked;
      out.source = Source::policy;
      return true;
    }
    counters_.monitored.fetch_add(1, std::memory_order_relaxed);
  }

  switch (cache_.lookup(key, now, &out.record)) {
    case DnsCache::Outcome::hit:
      counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      out.status = Status::ok;
      out.source = Source::cache;
      return true;
    case DnsCache::Outcome::negative:
      counters_.negative_hits.fetch_add(1, std::memory_order_relaxed);
      out.status = Status::nxdomain;
      out.source = Source::negative_cache;
      return true;
    case DnsCache::Outcome::miss:
      break;
  }

  // Generation BEFORE the zone read — the stamp that makes a racing zone
  // update kill this fill instead of hiding behind it.
  const std::uint64_t gen = zone_.epoch().current();
  const bool found = zone_.with_record(key, [&](const core::DnsRecord& rec) {
    out.record = rec;
  });
  if (found) {
    counters_.zone_hits.fetch_add(1, std::memory_order_relaxed);
    cache_.insert(key, out.record, now + cfg_.positive_ttl, gen);
    out.status = Status::ok;
    out.source = Source::zone;
    return true;
  }
  if (!authoritative) {
    if (canon.empty()) canon.assign(key);
    return false;  // forward upstream
  }
  counters_.nxdomain.fetch_add(1, std::memory_order_relaxed);
  cache_.insert_negative(key, now, cfg_.negative_ttl, gen);
  out.status = Status::nxdomain;
  out.source = Source::zone;
  return true;
}

Resolver::Answer Resolver::resolve(std::string_view name, core::ExpTime now) {
  Answer a;
  std::string canon;
  resolve_local(name, now, /*authoritative=*/true, canon, a);
  return a;
}

void Resolver::resolve_async(std::string_view name, AnswerFn done) {
  const core::ExpTime now = loop_.now_seconds();
  Answer a;
  std::string canon;
  const bool authoritative = !static_cast<bool>(upstream_);
  if (resolve_local(name, now, authoritative, canon, a)) {
    done(a);
    return;
  }

  // Local miss with an upstream wired: forward with timeout/backoff.
  std::uint16_t id = next_id_;
  while (pending_.contains(id) || id == 0) ++id;  // 0 is never used
  next_id_ = static_cast<std::uint16_t>(id + 1);

  Pending p;
  p.name = std::move(canon);
  p.done = std::move(done);
  p.attempts_left = cfg_.upstream_attempts == 0 ? 0
                                                : cfg_.upstream_attempts - 1;
  p.timeout = cfg_.upstream_timeout;
  p.serial = next_serial_++;
  auto [it, inserted] = pending_.emplace(id, std::move(p));
  assert(inserted);
  counters_.forwarded.fetch_add(1, std::memory_order_relaxed);
  // Arm BEFORE sending: the upstream hook may answer synchronously (an
  // in-process resolver), and on_upstream_frame erases the pending entry
  // — nothing may touch `it` after send_query. A stale timer is harmless
  // (serial mismatch), a dangling entry reference is not.
  arm_timeout(id, it->second.serial, it->second.timeout);
  send_query(id, it->second);
}

void Resolver::send_query(std::uint16_t id, Pending& p) {
  QueryFrame q;
  q.id = id;
  q.name = p.name;
  auto frame = q.serialize();
  if (frame) upstream_(std::move(*frame));
}

void Resolver::arm_timeout(std::uint16_t id, std::uint64_t serial,
                           net::TimeUs delay) {
  loop_.schedule_in(delay, [this, id, serial] {
    auto it = pending_.find(id);
    if (it == pending_.end() || it->second.serial != serial)
      return;  // answered (or slot reused) — stale timer
    Pending& p = it->second;
    if (p.attempts_left > 0) {
      --p.attempts_left;
      p.timeout *= cfg_.backoff_factor;
      counters_.retransmits.fetch_add(1, std::memory_order_relaxed);
      // Same ordering rule as resolve_async: a synchronous upstream
      // answer erases the entry inside send_query, so arm first.
      arm_timeout(id, p.serial, p.timeout);
      send_query(id, p);
      return;
    }
    counters_.upstream_timeouts.fetch_add(1, std::memory_order_relaxed);
    Answer a;
    a.status = Status::servfail;  // transient — deliberately NOT cached
    a.source = Source::upstream;
    AnswerFn done = std::move(p.done);
    pending_.erase(it);
    done(a);
  });
}

void Resolver::on_upstream_frame(ByteSpan frame) {
  auto resp = ResponseFrame::parse(frame);
  if (!resp) {
    counters_.upstream_mismatched.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto it = pending_.find(resp->id);
  if (it == pending_.end() || it->second.name != resp->name) {
    // Unknown id or an id-collision answer for a different question:
    // either way it must not touch the cache (§VII-A's stand-in for
    // off-path answer forgery).
    counters_.upstream_mismatched.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const core::ExpTime now = loop_.now_seconds();
  const std::uint64_t gen = zone_.epoch().current();
  Answer a;
  switch (resp->rcode) {
    case Rcode::ok:
      counters_.upstream_answers.fetch_add(1, std::memory_order_relaxed);
      a.status = Status::ok;
      a.record = std::move(*resp->record);
      cache_.insert(resp->name, a.record,
                    now + std::min<core::ExpTime>(resp->ttl,
                                                  cfg_.positive_ttl),
                    gen);
      break;
    case Rcode::nxdomain:
      counters_.upstream_nxdomain.fetch_add(1, std::memory_order_relaxed);
      a.status = Status::nxdomain;
      cache_.insert_negative(resp->name, now,
                             std::min<core::ExpTime>(resp->ttl,
                                                     cfg_.negative_ttl),
                             gen);
      break;
    case Rcode::refused:
      a.status = Status::blocked;
      break;
    case Rcode::servfail:
      a.status = Status::servfail;
      break;
  }
  a.source = Source::upstream;
  AnswerFn done = std::move(it->second.done);
  pending_.erase(it);
  done(a);
}

Bytes Resolver::answer_query(ByteSpan query_frame) {
  auto q = QueryFrame::parse(query_frame);
  if (!q) return Bytes{};
  const Answer a = resolve(q->name, loop_.now_seconds());

  ResponseFrame resp;
  resp.id = q->id;
  resp.name = q->name;
  switch (a.status) {
    case Status::ok:
      resp.rcode = Rcode::ok;
      resp.ttl = cfg_.positive_ttl;
      resp.record = a.record;
      break;
    case Status::nxdomain:
      resp.rcode = Rcode::nxdomain;
      resp.ttl = cfg_.negative_ttl;
      break;
    case Status::blocked:
      resp.rcode = Rcode::refused;
      break;
    case Status::servfail:
    case Status::invalid:
      resp.rcode = Rcode::servfail;
      break;
  }
  auto out = resp.serialize();
  return out ? std::move(*out) : Bytes{};
}

Result<void> Resolver::admit_publish(std::string_view name,
                                     const core::EphId& ephid,
                                     core::ExpTime now) {
  if (auto ok = validate_name(name); !ok) return ok;
  if (aa_ != nullptr) {
    // The AA consults the same policy through its hook and revokes the
    // publishing EphID on a block (the Fig-5 tail).
    auto r = aa_->enforce_domain_policy(name, ephid, now);
    if (!r) counters_.publish_blocked.fetch_add(1, std::memory_order_relaxed);
    return r;
  }
  if (policy_.blocked(name, nullptr)) {
    counters_.publish_blocked.fetch_add(1, std::memory_order_relaxed);
    return Result<void>(Errc::unauthorized, "domain blocked by policy");
  }
  return Result<void>::success();
}

std::size_t Resolver::block_domain(std::string_view domain,
                                   core::ExpTime now) {
  policy_.block(domain);
  core::emit_domain_block(persist_, domain);
  // Sweep existing publications under the new rule: collect under the
  // stripe locks, then enforce + erase outside them (enforcement touches
  // the AA and the zone again).
  std::vector<std::pair<std::string, core::EphId>> swept;
  zone_.for_each([&](const core::DnsRecord& rec) {
    if (policy_.blocked(rec.name, nullptr))
      swept.emplace_back(rec.name, rec.cert.ephid);
  });
  for (const auto& [name, ephid] : swept) {
    if (aa_ != nullptr) (void)aa_->enforce_domain_policy(name, ephid, now);
    zone_.erase(name);  // bumps the epoch — cached answers die with it
  }
  return swept.size();
}

Resolver::Stats Resolver::stats() const {
  Stats s;
  const auto ld = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  s.lookups = ld(counters_.lookups);
  s.invalid_name = ld(counters_.invalid_name);
  s.policy_blocked = ld(counters_.policy_blocked);
  s.monitored = ld(counters_.monitored);
  s.cache_hits = ld(counters_.cache_hits);
  s.negative_hits = ld(counters_.negative_hits);
  s.zone_hits = ld(counters_.zone_hits);
  s.nxdomain = ld(counters_.nxdomain);
  s.publish_blocked = ld(counters_.publish_blocked);
  s.forwarded = ld(counters_.forwarded);
  s.retransmits = ld(counters_.retransmits);
  s.upstream_answers = ld(counters_.upstream_answers);
  s.upstream_nxdomain = ld(counters_.upstream_nxdomain);
  s.upstream_timeouts = ld(counters_.upstream_timeouts);
  s.upstream_mismatched = ld(counters_.upstream_mismatched);
  return s;
}

// ---- ResolverPool ------------------------------------------------------------

ResolverPool::ResolverPool(Resolver& resolver, Config cfg)
    : resolver_(resolver), cfg_(cfg) {
  if (cfg_.threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    cfg_.threads = hw == 0 ? 1 : hw;
  }
  if (cfg_.chunk == 0) cfg_.chunk = 64;
  slots_ = std::make_unique<Slot[]>(cfg_.threads);
  for (std::size_t i = 0; i < cfg_.threads; ++i)
    slots_[i].drbg = std::make_unique<crypto::HmacDrbg>(cfg_.rng_seed, i);
  workers_.reserve(cfg_.threads - 1);
  for (std::size_t i = 1; i < cfg_.threads; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

ResolverPool::~ResolverPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ResolverPool::process_chunk(std::size_t slot, std::size_t begin,
                                 std::size_t end) {
  std::lock_guard slot_lock(slots_[slot].mu);
  Stats& st = slots_[slot].stats;
  for (std::size_t j = begin; j < end; ++j) {
    out_[j] = resolver_.resolve(names_[j], now_);
    ++st.lookups;
    switch (out_[j].status) {
      case Resolver::Status::ok:
        ++st.ok;
        if (out_[j].source == Resolver::Source::cache) ++st.cache_hits;
        break;
      case Resolver::Status::nxdomain:
        ++st.nxdomain;
        break;
      case Resolver::Status::blocked:
        ++st.blocked;
        break;
      default:
        break;
    }
  }
}

void ResolverPool::drain_chunks(std::size_t slot) {
  for (;;) {
    std::size_t begin, end;
    {
      std::lock_guard lock(mu_);
      if (next_chunk_ >= chunks_total_) return;
      begin = next_chunk_++ * cfg_.chunk;
      end = std::min(begin + cfg_.chunk, names_n_);
    }
    process_chunk(slot, begin, end);
    {
      std::lock_guard lock(mu_);
      if (++chunks_done_ == chunks_total_) cv_done_.notify_all();
    }
  }
}

void ResolverPool::worker_main(std::size_t slot) {
  for (;;) {
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock,
                    [this] { return stop_ || next_chunk_ < chunks_total_; });
      if (stop_) return;
    }
    drain_chunks(slot);
  }
}

void ResolverPool::process_lookups(std::span<const std::string> names,
                                   core::ExpTime now,
                                   std::span<Resolver::Answer> out) {
  assert(out.size() >= names.size());
  if (names.empty()) return;
  {
    std::lock_guard lock(mu_);
    names_ = names.data();
    names_n_ = names.size();
    out_ = out.data();
    now_ = now;
    next_chunk_ = 0;
    chunks_done_ = 0;
    chunks_total_ = (names.size() + cfg_.chunk - 1) / cfg_.chunk;
  }
  cv_work_.notify_all();
  // The calling thread is processing context 0 (ServicePool convention).
  drain_chunks(0);
  {
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [this] { return chunks_done_ == chunks_total_; });
  }
}

ResolverPool::Stats ResolverPool::stats() const {
  Stats merged;
  for (std::size_t i = 0; i < cfg_.threads; ++i) {
    std::lock_guard slot_lock(slots_[i].mu);
    merged.lookups += slots_[i].stats.lookups;
    merged.ok += slots_[i].stats.ok;
    merged.nxdomain += slots_[i].stats.nxdomain;
    merged.blocked += slots_[i].stats.blocked;
    merged.cache_hits += slots_[i].stats.cache_hits;
  }
  return merged;
}

}  // namespace apna::dns

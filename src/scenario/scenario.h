// Scenario engine — deterministic, seed-driven Internet-scale scripts over
// the in-process APNA world (ROADMAP item: "Internet-scale scenario
// engine").
//
// The paper's accountability story only matters at scale: an AS keeps
// per-host state for MILLIONS of registered hosts (§VIII sizes the load
// against a national ISP's peak) while absorbing bogus-EphID floods and
// Fig-5 shutoff storms. The integration examples top out at a couple dozen
// clients, so the scale-sensitive invariants — never-cache-negatives under
// floods, epoch-invalidation cost under mass revocation, HostDb footprint —
// were asserted nowhere. This layer runs them.
//
// A scenario is a SCRIPT: an ordered vector of Phase specs (the DSL). The
// Engine owns one AS's full infrastructure — AsState (compact HostDb +
// revocation tables), BorderRouter + ForwardingPool (flow-hash steered
// workers with per-worker FlowCaches), RegistryService, AccountabilityAgent,
// and a SimTransport pair for wire-level injection — and executes phases in
// order, returning one PhaseReport per phase.
//
// Phase kinds and what they model:
//   register_hosts   population bootstrap (a provisioning wave)
//   churn            diurnal join/leave: new hosts enroll, old ones
//                    de-register (each leave bumps VerdictEpoch), with
//                    legitimate traffic interleaved
//   flash_crowd      churn with a join spike and a traffic surge
//   traffic          steady Zipf-distributed legitimate load
//   flood            bogus-EphID DDoS through Transport::send_raw: garbage
//                    frames die at PacketView::bind (rx_rejected), well-
//                    formed forged-EphID packets reach classify and drop at
//                    authenticated decryption — and must NEVER enter any
//                    worker's FlowCache
//   shutoff_storm    Fig-5 requests hammering the AccountabilityAgent,
//                    driving revocations and §VIII-G2 HID escalations
//   revocation_wave  mass revocation hammering VerdictEpoch, interleaved
//                    with classify bursts to expose the hit collapse
//   replay_tamper    duplicate + tampered copies of legitimate packets
//                    against a replay-filter router (§VIII-D)
//   dns_storm        random-name lookup flood against the DNS resolver
//                    (src/dns): NXDOMAIN storms must stay inside the
//                    negative cache's bounded slice and the positive hit
//                    rate must recover after the storm (§VII-A at scale)
//   kill_recover     crash-safety: journal a revocation wave, snapshot,
//                    journal DNS publications + Fig-5 domain blocks on
//                    top, probe the world's verdicts, DROP every
//                    in-memory structure, recover from the persisted
//                    image (core/as_persist.h) and re-probe — recovered
//                    verdicts must be bit-identical (requires
//                    Config::persist)
//
// Determinism contract (asserted by the driver's --verify-determinism and
// the `scenario` ctest entries): every workload decision flows from
// Config::seed through ChaChaRng; the virtual clock advances by fixed
// steps; phase counters (drops, hits, epoch, memory bytes) are therefore
// exact functions of (script, seed) — same seed ⇒ byte-identical scenario
// JSON. Wall-clock figures (pps, shutoff latency percentiles) are
// inherently machine-dependent and go to stdout only, never into the
// deterministic JSON.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/as_directory.h"
#include "core/as_state.h"
#include "core/flow_cache.h"
#include "dns/resolver.h"
#include "net/sim.h"
#include "net/transport.h"
#include "persist/sink.h"
#include "persist/vfs.h"
#include "router/border_router.h"
#include "services/persist_coordinator.h"
#include "router/forwarding_pool.h"
#include "services/accountability_agent.h"
#include "services/registry_service.h"
#include "services/subscriber_registry.h"
#include "wire/packet_buf.h"

namespace apna::scenario {

/// One step of a scenario script (the DSL statement). Use the factories —
/// the raw fields are kind-specific magnitudes.
struct Phase {
  enum class Kind {
    register_hosts,
    churn,
    flash_crowd,
    traffic,
    flood,
    shutoff_storm,
    revocation_wave,
    replay_tamper,
    dns_storm,
    kill_recover,
  };

  Kind kind = Kind::traffic;
  std::string name;
  std::uint64_t joins = 0;        // register_hosts / churn / flash_crowd
  std::uint64_t leaves = 0;       // churn / flash_crowd
  std::uint64_t bursts = 0;       // traffic-driving phases
  std::uint64_t burst_packets = 256;
  std::uint64_t requests = 0;     // shutoff_storm / dns_storm (junk lookups)
  std::uint64_t revocations = 0;  // revocation_wave
  std::uint64_t waves = 1;        // revocation_wave: revocations split over
                                  // this many epoch-bumping waves
  double bogus_fraction = 0.8;    // flood: forged-EphID share of each burst
  double garbage_fraction = 0.1;  // flood: unparseable-frame share
  double zipf_s = 1.1;            // flow locality of legitimate traffic

  static Phase register_hosts(std::string name, std::uint64_t n);
  static Phase churn(std::string name, std::uint64_t joins,
                     std::uint64_t leaves, std::uint64_t bursts,
                     std::uint64_t burst_packets = 256);
  static Phase flash_crowd(std::string name, std::uint64_t joins,
                           std::uint64_t bursts,
                           std::uint64_t burst_packets = 512);
  static Phase traffic(std::string name, std::uint64_t bursts,
                       std::uint64_t burst_packets = 256,
                       double zipf_s = 1.1);
  static Phase flood(std::string name, std::uint64_t bursts,
                     std::uint64_t burst_packets = 256,
                     double bogus_fraction = 0.8,
                     double garbage_fraction = 0.1);
  static Phase shutoff_storm(std::string name, std::uint64_t requests);
  static Phase revocation_wave(std::string name, std::uint64_t revocations,
                               std::uint64_t waves, std::uint64_t bursts,
                               std::uint64_t burst_packets = 256);
  static Phase replay_tamper(std::string name, std::uint64_t bursts,
                             std::uint64_t burst_packets = 256);
  /// `names` positive records published to the zone (topped up, never
  /// shrunk), `junk_lookups` random NXDOMAIN lookups between two identical
  /// Zipf positive passes of bursts × burst_packets lookups each (warm /
  /// recovery).
  static Phase dns_storm(std::string name, std::uint64_t names,
                         std::uint64_t junk_lookups, std::uint64_t bursts,
                         std::uint64_t burst_packets = 256);
  /// Crash-safety phase: `revocations` journaled before the snapshot,
  /// `dns_names` published and `domain_blocks` Fig-5 rules journaled
  /// after it, ~`probes` verdict probes per category compared across the
  /// kill. No-op unless the engine was built with Config::persist.
  static Phase kill_recover(std::string name, std::uint64_t revocations,
                            std::uint64_t domain_blocks,
                            std::uint64_t dns_names, std::uint64_t probes);

  const char* kind_name() const;
};

/// Everything one phase did and left behind. All fields except the
/// `wall_*` ones are deterministic functions of (script, seed).
struct PhaseReport {
  std::string name;
  const char* kind = "";

  // Workload shape.
  std::uint64_t packets = 0;        // classified through the pool
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t shutoff_requests = 0;
  std::uint64_t revocations_applied = 0;

  // Router outcome deltas (this phase only).
  router::BorderRouter::Stats router;
  // Merged per-worker flow-cache deltas (this phase only).
  core::FlowCache::Stats cache;
  // Transport deltas (flood phases inject through SimTransport::send_raw).
  std::uint64_t rx_rejected = 0;    // frames PacketView::bind refused
  std::uint64_t rx_delivered = 0;   // frames that reached classification

  // AA deltas (shutoff storms).
  std::uint64_t aa_accepted = 0;
  std::uint64_t aa_rejected = 0;
  std::uint64_t aa_hid_escalations = 0;

  // DNS resolver deltas (dns_storm phases only; zero elsewhere and omitted
  // from the scenario JSON for other phase kinds).
  std::uint64_t dns_lookups = 0;
  std::uint64_t dns_cache_hits = 0;
  std::uint64_t dns_negative_hits = 0;
  std::uint64_t dns_zone_hits = 0;
  std::uint64_t dns_nxdomain = 0;
  std::uint64_t dns_negative_entries = 0;   // gauge AFTER the phase
  std::uint64_t dns_negative_capacity = 0;  // gauge: the cache's hard cap
  /// Positive-pass hit rate after the storm — the recovery signal.
  double dns_recovery_hit_rate = 0.0;

  // Persistence / recovery (kill_recover phases only; zero elsewhere and
  // omitted from the scenario JSON for other phase kinds).
  std::uint64_t persist_records_appended = 0;  // journaled before the kill
  std::uint64_t persist_snapshots_written = 0;
  std::uint64_t persist_snapshot_generation = 0;  // the one recovery loaded
  std::uint64_t journal_records_replayed = 0;
  std::uint64_t journal_bytes_discarded = 0;  // torn-tail bytes dropped
  std::uint64_t recovered_hosts = 0;
  std::uint64_t recovered_revocations = 0;
  std::uint64_t recovered_dns_records = 0;
  std::uint64_t recovered_domain_blocks = 0;
  /// Verdict probes compared across the kill (host records, revocation
  /// checks, forwarding classifications, DNS zone + policy answers).
  std::uint64_t verdict_probes = 0;
  /// Probes whose post-recovery answer differed. MUST be 0.
  std::uint64_t verdict_mismatches = 0;

  // World state AFTER the phase.
  std::uint64_t epoch = 0;          // VerdictEpoch generation
  std::uint64_t live_hosts = 0;
  std::uint64_t revoked_entries = 0;
  std::uint64_t host_db_bytes = 0;  // HostDb::memory_stats().total()
  double host_db_bytes_per_host = 0.0;
  std::uint64_t revocation_bytes = 0;

  // Wall-clock (NON-deterministic — stdout only, never in scenario JSON).
  double wall_seconds = 0.0;
  double wall_pps = 0.0;            // packets / wall_seconds (0 if no pkts)
  double wall_shutoff_p50_us = 0.0;
  double wall_shutoff_p99_us = 0.0;
};

/// The world a script runs against. One Engine = one source AS with its
/// full infrastructure plus a remote AS (victim certificates for Fig-5
/// requests come from somewhere) and a wire-level attacker endpoint.
class Engine {
 public:
  struct Config {
    std::uint64_t seed = 1;
    core::Aid aid = 64512;
    core::Aid remote_aid = 64513;
    /// ForwardingPool processing threads (flow-hash steered). Counter
    /// determinism holds for any value: rings are steered by EphID hash
    /// and each worker runs its ring in order.
    std::size_t threads = 2;
    std::size_t flow_cache_entries = 4096;
    std::size_t shard_count = core::kDefaultShardCount;
    /// Sealed legitimate-flow working set per phase (distinct EphIDs).
    std::size_t active_flows = 256;
    /// §VIII-G2 escalation threshold (shutoff storms trip it on purpose).
    std::uint32_t max_revocations_per_host = 16;
    /// Attach the durability pipeline (MemVfs-backed snapshot + journal —
    /// in-memory so scenario JSON stays an exact function of script +
    /// seed). Required for kill_recover phases; off by default so other
    /// scripts' counters are untouched.
    bool persist = false;
  };

  explicit Engine(const Config& cfg);

  /// Executes one phase, returning its report.
  PhaseReport run_phase(const Phase& phase);

  /// Executes a whole script in order.
  std::vector<PhaseReport> run_script(const std::vector<Phase>& script);

  // World access (tests poke at the internals).
  core::AsState& as() { return *as_; }
  router::ForwardingPool& pool() { return *pool_; }
  services::AccountabilityAgent& aa() { return *aa_; }
  core::ExpTime now() const { return now_; }
  std::uint64_t live_hosts() const { return as_->host_db.size(); }

  /// The deterministic per-host kHA keys of scenario host `hid` (the engine
  /// stores no per-host key material — at 10⁶ hosts a parallel key vector
  /// would dwarf the database being measured).
  core::HostAsKeys host_keys(core::Hid hid) const;

  /// The dns_storm infrastructure (null until the first dns_storm phase).
  dns::Resolver* resolver() { return dns_resolver_.get(); }

  /// The durability pipeline (null unless Config::persist).
  services::PersistCoordinator* persist() { return persist_coord_.get(); }

 private:
  struct SealedFlow;  // one reusable sealed legitimate packet
  class ZipfPicker;   // inverse-CDF Zipf over the working set

  void do_register(std::uint64_t n, PhaseReport& r);
  void do_leave(std::uint64_t n, PhaseReport& r);
  void do_traffic(const Phase& p, PhaseReport& r);
  void do_flood(const Phase& p, PhaseReport& r);
  void do_shutoff_storm(const Phase& p, PhaseReport& r);
  void do_revocation_wave(const Phase& p, PhaseReport& r);
  void do_replay_tamper(const Phase& p, PhaseReport& r);
  void do_dns_storm(const Phase& p, PhaseReport& r);
  void do_kill_recover(const Phase& p, PhaseReport& r);
  /// Lazily builds the DNS zone + resolver — only dns_storm scripts pay for
  /// them.
  void ensure_dns();
  /// (Re)builds the PersistCoordinator over the current AsState, seeds
  /// its aggregates, writes the initial snapshot generation and wires
  /// every mutation site's sink.
  void attach_persistence(std::vector<core::IssuedEphIdMeta> issued = {},
                          std::vector<std::string> blocked = {},
                          std::vector<core::DnsRecord> dns = {});

  /// Rebuilds the sealed legitimate working set over the CURRENT live host
  /// range (churn moves it).
  std::vector<SealedFlow> build_working_set(std::size_t flows);
  core::ShutoffRequest make_storm_request(core::Hid attacker,
                                          std::uint32_t serial);
  void snapshot_world(PhaseReport& r) const;

  Config cfg_;
  crypto::ChaChaRng rng_;
  net::EventLoop loop_;
  std::unique_ptr<core::AsState> as_;
  std::unique_ptr<core::AsState> remote_;
  core::AsDirectory dir_;
  services::SubscriberRegistry subs_;
  std::unique_ptr<services::RegistryService> rs_;
  std::unique_ptr<services::AccountabilityAgent> aa_;
  std::unique_ptr<router::BorderRouter> br_;
  std::unique_ptr<router::ForwardingPool> pool_;
  // Wire-level injection: attacker endpoint -> router RX endpoint.
  std::unique_ptr<net::SimTransport> attacker_tx_;
  std::unique_ptr<net::SimTransport> router_rx_;
  net::PeerId to_router_ = 0;
  std::vector<wire::PacketBuf> rx_staging_;  // what the rx handler caught

  core::ExpTime now_;
  /// Live scenario hosts are the contiguous HID range [first_hid_,
  /// next_hid_): joins extend the top, diurnal leaves retire the bottom
  /// (oldest first). Infrastructure HIDs live below kFirstScenarioHid.
  static constexpr core::Hid kFirstScenarioHid = 65536;
  core::Hid first_hid_ = kFirstScenarioHid;
  core::Hid next_hid_ = kFirstScenarioHid;

  // Victim identity at the remote AS (Fig-5 requester).
  core::EphIdKeyPair victim_kp_;
  core::EphIdCertificate victim_cert_;

  // Deltas are computed against these running snapshots.
  /// replay_tamper classifies through a dedicated replay-filter router, not
  /// the pool; its stats accumulate here and merge into that phase's delta.
  router::BorderRouter::Stats replay_extra_;
  router::BorderRouter::Stats last_router_;
  core::FlowCache::Stats last_cache_;
  services::AccountabilityAgent::Stats last_aa_;
  net::TransportStats last_rx_;

  // dns_storm world (lazy — see ensure_dns).
  std::unique_ptr<services::DnsZone> dns_zone_;
  std::unique_ptr<dns::Resolver> dns_resolver_;
  std::uint64_t dns_names_ = 0;  // positive records published so far

  // Durability pipeline (Config::persist). The MemVfs outlives the
  // coordinator across a kill_recover phase — it IS the surviving disk.
  std::unique_ptr<persist::MemVfs> vfs_;
  std::unique_ptr<services::PersistCoordinator> persist_coord_;
  persist::Sink* persist_sink_ = nullptr;
};

// ---- Canned scripts (what the driver and ctest run) --------------------------

/// ≥ 10⁶ hosts in one AS: provisioning waves, diurnal churn, a flash
/// crowd, steady traffic — the memory-footprint and churn story.
std::vector<Phase> internet_scale_script(std::uint64_t hosts,
                                         std::uint64_t traffic_bursts);

/// The adversary reel: bogus-EphID flood, Fig-5 shutoff storm,
/// mass-revocation waves, replay/tamper injection — with recovery traffic
/// after each attack so hit-rate collapse AND recovery are both recorded.
std::vector<Phase> attack_storms_script(std::uint64_t hosts, bool smoke);

/// The §VII-A resolver under fire: publish `names` records, warm the
/// cache, flood it with random NXDOMAIN lookups, and measure the recovery
/// — negative entries must stay inside the cache's bounded slice and the
/// positive hit rate must come back.
std::vector<Phase> dns_storm_script(std::uint64_t names, bool smoke);

/// Crash-and-recover: provision `hosts`, drive traffic and a Fig-5
/// storm, then a kill_recover phase (journal + snapshot + journal
/// suffix, drop the world, reload) followed by post-recovery traffic.
/// Requires Engine::Config::persist.
std::vector<Phase> kill_recover_script(std::uint64_t hosts, bool smoke);

/// Population spread across many ASes, each with its own AsState +
/// BorderRouter; inter-AS traffic classified at source egress, transit and
/// destination ingress. Answers the "100s of ASes" half of the tentpole
/// without paying a full Engine per AS.
struct MultiAsConfig {
  std::uint64_t seed = 1;
  std::size_t as_count = 100;
  std::uint64_t hosts_per_as = 1000;
  std::uint64_t bursts = 8;
  std::uint64_t burst_packets = 128;
  /// Fraction of each AS's population churned (left + rejoined) mid-run.
  double churn_fraction = 0.1;
  std::size_t shard_count = 4;  // small ASes: fewer stripes, less overhead
};

struct MultiAsReport {
  std::size_t as_count = 0;
  std::uint64_t total_hosts = 0;
  std::uint64_t total_host_db_bytes = 0;
  double mean_bytes_per_host = 0.0;
  double max_bytes_per_host = 0.0;
  std::uint64_t forwarded_out = 0;   // source-AS egress passes
  std::uint64_t transited = 0;       // mid-path AS transit forwards
  std::uint64_t delivered_in = 0;    // destination-AS local deliveries
  std::uint64_t total_drops = 0;
  std::uint64_t churned = 0;         // hosts de- and re-registered
  double wall_seconds = 0.0;         // stdout only
};

MultiAsReport run_multi_as(const MultiAsConfig& cfg);

}  // namespace apna::scenario

#include "scenario/scenario.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/as_persist.h"
#include "core/packet_auth.h"
#include "services/service_identity.h"

namespace apna::scenario {

namespace {

using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

std::uint64_t aa_rejected_sum(const services::AccountabilityAgent::Stats& s) {
  return s.rejected_bad_cert + s.rejected_bad_sig + s.rejected_unauthorized +
         s.rejected_not_our_host + s.rejected_bad_mac + s.rejected_malformed;
}

}  // namespace

// ---- Phase DSL ---------------------------------------------------------------

Phase Phase::register_hosts(std::string name, std::uint64_t n) {
  Phase p;
  p.kind = Kind::register_hosts;
  p.name = std::move(name);
  p.joins = n;
  return p;
}

Phase Phase::churn(std::string name, std::uint64_t joins, std::uint64_t leaves,
                   std::uint64_t bursts, std::uint64_t burst_packets) {
  Phase p;
  p.kind = Kind::churn;
  p.name = std::move(name);
  p.joins = joins;
  p.leaves = leaves;
  p.bursts = bursts;
  p.burst_packets = burst_packets;
  return p;
}

Phase Phase::flash_crowd(std::string name, std::uint64_t joins,
                         std::uint64_t bursts, std::uint64_t burst_packets) {
  Phase p;
  p.kind = Kind::flash_crowd;
  p.name = std::move(name);
  p.joins = joins;
  p.bursts = bursts;
  p.burst_packets = burst_packets;
  return p;
}

Phase Phase::traffic(std::string name, std::uint64_t bursts,
                     std::uint64_t burst_packets, double zipf_s) {
  Phase p;
  p.kind = Kind::traffic;
  p.name = std::move(name);
  p.bursts = bursts;
  p.burst_packets = burst_packets;
  p.zipf_s = zipf_s;
  return p;
}

Phase Phase::flood(std::string name, std::uint64_t bursts,
                   std::uint64_t burst_packets, double bogus_fraction,
                   double garbage_fraction) {
  Phase p;
  p.kind = Kind::flood;
  p.name = std::move(name);
  p.bursts = bursts;
  p.burst_packets = burst_packets;
  p.bogus_fraction = bogus_fraction;
  p.garbage_fraction = garbage_fraction;
  return p;
}

Phase Phase::shutoff_storm(std::string name, std::uint64_t requests) {
  Phase p;
  p.kind = Kind::shutoff_storm;
  p.name = std::move(name);
  p.requests = requests;
  return p;
}

Phase Phase::revocation_wave(std::string name, std::uint64_t revocations,
                             std::uint64_t waves, std::uint64_t bursts,
                             std::uint64_t burst_packets) {
  Phase p;
  p.kind = Kind::revocation_wave;
  p.name = std::move(name);
  p.revocations = revocations;
  p.waves = waves == 0 ? 1 : waves;
  p.bursts = bursts;
  p.burst_packets = burst_packets;
  return p;
}

Phase Phase::replay_tamper(std::string name, std::uint64_t bursts,
                           std::uint64_t burst_packets) {
  Phase p;
  p.kind = Kind::replay_tamper;
  p.name = std::move(name);
  p.bursts = bursts;
  p.burst_packets = burst_packets;
  return p;
}

Phase Phase::dns_storm(std::string name, std::uint64_t names,
                       std::uint64_t junk_lookups, std::uint64_t bursts,
                       std::uint64_t burst_packets) {
  Phase p;
  p.kind = Kind::dns_storm;
  p.name = std::move(name);
  p.joins = names;
  p.requests = junk_lookups;
  p.bursts = bursts;
  p.burst_packets = burst_packets;
  return p;
}

Phase Phase::kill_recover(std::string name, std::uint64_t revocations,
                          std::uint64_t domain_blocks, std::uint64_t dns_names,
                          std::uint64_t probes) {
  Phase p;
  p.kind = Kind::kill_recover;
  p.name = std::move(name);
  p.revocations = revocations;
  p.requests = domain_blocks;
  p.joins = dns_names;
  p.bursts = probes;
  return p;
}

const char* Phase::kind_name() const {
  switch (kind) {
    case Kind::register_hosts: return "register_hosts";
    case Kind::churn: return "churn";
    case Kind::flash_crowd: return "flash_crowd";
    case Kind::traffic: return "traffic";
    case Kind::flood: return "flood";
    case Kind::shutoff_storm: return "shutoff_storm";
    case Kind::revocation_wave: return "revocation_wave";
    case Kind::replay_tamper: return "replay_tamper";
    case Kind::dns_storm: return "dns_storm";
    case Kind::kill_recover: return "kill_recover";
  }
  return "?";
}

// ---- Engine internals --------------------------------------------------------

/// One reusable legitimate packet: the sealed zero-copy image the pool
/// classifies, the raw wire bytes send_raw injects, and the identity it was
/// built from (revocation waves target working-set flows by EphID).
struct Engine::SealedFlow {
  core::Hid hid = 0;
  core::EphId ephid;
  wire::PacketBuf buf;
  Bytes raw;
};

/// Inverse-CDF Zipf over [0, n): P(k) ∝ 1/(k+1)^s. Self-seeded so a
/// phase's traffic stream is one deterministic function of the engine RNG
/// state at phase entry. (bench_util.h has the benchmark twin; the library
/// cannot depend on bench/.)
class Engine::ZipfPicker {
 public:
  ZipfPicker(std::size_t n, double s, std::uint64_t seed) : cdf_(n), rng_(seed) {
    double total = 0;
    for (std::size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t next() {
    const double u = rng_.uniform_double();
    return static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  crypto::ChaChaRng rng_;
};

Engine::Engine(const Config& cfg) : cfg_(cfg), rng_(cfg.seed) {
  as_ = std::make_unique<core::AsState>(cfg.aid,
                                        core::AsSecrets::generate(rng_),
                                        cfg.max_revocations_per_host,
                                        cfg.shard_count);
  remote_ = std::make_unique<core::AsState>(cfg.remote_aid,
                                            core::AsSecrets::generate(rng_));
  for (core::AsState* s : {as_.get(), remote_.get()}) {
    core::AsPublicInfo info;
    info.aid = s->aid;
    info.sign_pub = s->secrets.sign.pub;
    info.dh_pub = s->secrets.dh.pub;
    dir_.register_as(info);
  }
  subs_.add_subscriber(1, to_bytes("scenario"));
  rs_ = std::make_unique<services::RegistryService>(*as_, subs_, loop_, rng_);
  auto aa_ident = services::make_service_identity(
      *as_, rs_->allocate_hid(), loop_.now_seconds() + 30 * 86400, 0, nullptr,
      rng_);
  aa_ = std::make_unique<services::AccountabilityAgent>(*as_, dir_, loop_,
                                                        std::move(aa_ident));

  router::BorderRouter::Callbacks cb;
  // Count-only edges: consume (and pool-recycle) the handed-off buffers
  // like a transmit queue with no simulator behind it.
  cb.send_external = [](wire::PacketBuf) { return Result<void>::success(); };
  cb.deliver_internal = [](core::Hid, wire::PacketBuf) {
    return Result<void>::success();
  };
  cb.now = [this] { return now_; };
  br_ = std::make_unique<router::BorderRouter>(*as_, std::move(cb));

  router::ForwardingPool::Config pc;
  pc.threads = cfg.threads;
  pc.flow_cache_entries = cfg.flow_cache_entries;
  pool_ = std::make_unique<router::ForwardingPool>(*br_, pc);

  attacker_tx_ = std::make_unique<net::SimTransport>(loop_);
  router_rx_ = std::make_unique<net::SimTransport>(loop_);
  to_router_ = attacker_tx_->add_peer(*router_rx_);
  router_rx_->add_peer(*attacker_tx_);
  router_rx_->set_rx([this](net::PeerId, wire::PacketBuf pkt) {
    rx_staging_.push_back(std::move(pkt));
  });

  now_ = net::kEpochSeconds;

  victim_kp_ = core::EphIdKeyPair::generate(rng_);
  victim_cert_.ephid = remote_->codec.issue(9, now_ + 86400, rng_);
  victim_cert_.exp_time = now_ + 86400;
  victim_cert_.pub = victim_kp_.pub;
  victim_cert_.aid = remote_->aid;
  victim_cert_.aa_ephid = victim_cert_.ephid;
  victim_cert_.sign_with(remote_->secrets.sign);

  if (cfg_.persist) {
    // In-memory "disk": deterministic, and it survives the kill_recover
    // phase's destruction of the world above it.
    vfs_ = std::make_unique<persist::MemVfs>();
    attach_persistence();
  }
}

void Engine::attach_persistence(std::vector<core::IssuedEphIdMeta> issued,
                                std::vector<std::string> blocked,
                                std::vector<core::DnsRecord> dns) {
  services::PersistCoordinator::Config pc;
  pc.seed = cfg_.seed;
  pc.git_sha = "scenario-engine";  // fixed provenance — JSON stays seed-pure
  persist_coord_ = std::make_unique<services::PersistCoordinator>(
      *vfs_, "as-" + std::to_string(cfg_.aid), *as_, pc);
  persist_coord_->seed(std::move(issued), std::move(blocked), std::move(dns));
  // MemVfs cannot fail; a failed start on a real Vfs would leave the
  // engine running non-durably, which is the degraded contract anyway.
  (void)persist_coord_->start();
  persist_sink_ = persist_coord_.get();
  rs_->set_persist_sink(persist_sink_);
  aa_->set_persist_sink(persist_sink_);
  if (dns_zone_) dns_zone_->set_persist_sink(persist_sink_);
  if (dns_resolver_) dns_resolver_->set_persist_sink(persist_sink_);
}

core::HostAsKeys Engine::host_keys(core::Hid hid) const {
  // Per-host keys are a pure function of (seed, hid): SplitMix64-style
  // stream selection into a dedicated ChaCha stream. No per-host key
  // storage — at 10⁶ hosts a parallel key vector would dwarf the database
  // under measurement.
  std::uint64_t x = cfg_.seed ^ (0x9e3779b97f4a7c15ull * (hid + 1));
  crypto::ChaChaRng r(x);
  core::HostAsKeys k;
  r.fill(MutByteSpan(k.enc.data(), k.enc.size()));
  r.fill(MutByteSpan(k.mac.data(), k.mac.size()));
  return k;
}

void Engine::do_register(std::uint64_t n, PhaseReport& r) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const core::Hid hid = next_hid_++;
    core::HostRecord rec;
    rec.hid = hid;
    rec.keys = host_keys(hid);
    rec.subscriber_id = 1;
    as_->host_db.upsert(rec);
    core::emit_host_upsert(persist_sink_, rec);
  }
  r.joins += n;
}

void Engine::do_leave(std::uint64_t n, PhaseReport& r) {
  // Diurnal model: the oldest registrations leave first.
  for (std::uint64_t i = 0; i < n && first_hid_ < next_hid_; ++i) {
    as_->host_db.erase(first_hid_);
    core::emit_host_erase(persist_sink_, first_hid_);
    ++first_hid_;
  }
  r.leaves += n;
}

std::vector<Engine::SealedFlow> Engine::build_working_set(std::size_t flows) {
  const std::uint64_t live = next_hid_ - first_hid_;
  flows = static_cast<std::size_t>(
      std::min<std::uint64_t>(flows, live));
  std::vector<SealedFlow> out;
  out.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    SealedFlow f;
    f.hid = first_hid_ + static_cast<core::Hid>((live * i) / flows);
    f.ephid = as_->codec.issue(f.hid, now_ + 7200, rng_);
    wire::Packet pkt;
    pkt.src_aid = cfg_.aid;
    pkt.dst_aid = cfg_.remote_aid;
    pkt.src_ephid = f.ephid.bytes;
    rng_.fill(MutByteSpan(pkt.dst_ephid.data(), 16));
    pkt.proto = wire::NextProto::data;
    pkt.payload = rng_.bytes(64);
    core::stamp_packet_mac(
        crypto::AesCmac(ByteSpan(host_keys(f.hid).mac.data(), 16)), pkt);
    f.buf = pkt.seal();
    f.raw = pkt.serialize();
    out.push_back(std::move(f));
  }
  return out;
}

void Engine::do_traffic(const Phase& p, PhaseReport& r) {
  if (next_hid_ == first_hid_ || p.bursts == 0 || p.burst_packets == 0) return;
  const auto ws = build_working_set(cfg_.active_flows);
  ZipfPicker zipf(ws.size(), p.zipf_s, rng_.next_u64());
  std::vector<wire::PacketView> burst(p.burst_packets);
  for (std::uint64_t b = 0; b < p.bursts; ++b) {
    for (auto& v : burst) v = ws[zipf.next()].buf.view();
    pool_->process_outgoing(burst, now_);
    r.packets += burst.size();
    ++now_;
  }
}

void Engine::do_flood(const Phase& p, PhaseReport& r) {
  if (next_hid_ == first_hid_ || p.bursts == 0 || p.burst_packets == 0) return;
  const auto ws = build_working_set(cfg_.active_flows);
  const std::uint32_t garbage_mark =
      static_cast<std::uint32_t>(p.garbage_fraction * 1000.0);
  const std::uint32_t bogus_mark =
      garbage_mark + static_cast<std::uint32_t>(p.bogus_fraction * 1000.0);
  std::vector<wire::PacketView> views;
  for (std::uint64_t b = 0; b < p.bursts; ++b) {
    rx_staging_.clear();
    for (std::uint64_t i = 0; i < p.burst_packets; ++i) {
      const std::uint32_t u = rng_.next_u32() % 1000;
      if (u < garbage_mark) {
        // Unparseable frame: dies at PacketView::bind (rx_rejected), never
        // reaches the router, never allocates on the RX path.
        const Bytes junk = rng_.bytes(8 + rng_.next_u32() % 24);
        attacker_tx_->send_raw(to_router_, ByteSpan(junk.data(), junk.size()));
      } else if (u < bogus_mark) {
        // Well-formed frame with a forged EphID: passes bind, reaches
        // classification, drops at authenticated EphID decryption — and
        // must never be inserted into any worker's FlowCache.
        wire::Packet pkt;
        pkt.src_aid = cfg_.aid;
        pkt.dst_aid = cfg_.remote_aid;
        rng_.fill(MutByteSpan(pkt.src_ephid.data(), 16));
        rng_.fill(MutByteSpan(pkt.dst_ephid.data(), 16));
        rng_.fill(MutByteSpan(pkt.mac.data(), pkt.mac.size()));
        pkt.proto = wire::NextProto::data;
        pkt.payload = rng_.bytes(32);
        const Bytes raw = pkt.serialize();
        attacker_tx_->send_raw(to_router_, ByteSpan(raw.data(), raw.size()));
      } else {
        const SealedFlow& f = ws[rng_.next_u32() % ws.size()];
        attacker_tx_->send_raw(to_router_, ByteSpan(f.raw.data(), f.raw.size()));
      }
    }
    router_rx_->poll();
    views.clear();
    for (const wire::PacketBuf& buf : rx_staging_) views.push_back(buf.view());
    pool_->process_outgoing(views, now_);
    r.packets += views.size();
    ++now_;
  }
  rx_staging_.clear();
}

core::ShutoffRequest Engine::make_storm_request(core::Hid attacker,
                                                std::uint32_t serial) {
  wire::Packet pkt;
  pkt.src_aid = cfg_.aid;
  pkt.src_ephid = as_->codec.issue(attacker, now_ + 900, rng_).bytes;
  pkt.dst_aid = remote_->aid;
  pkt.dst_ephid = victim_cert_.ephid.bytes;
  pkt.proto = wire::NextProto::data;
  pkt.payload = to_bytes("storm#" + std::to_string(serial));
  core::stamp_packet_mac(
      crypto::AesCmac(ByteSpan(host_keys(attacker).mac.data(), 16)), pkt);
  core::ShutoffRequest req;
  req.offending_packet = pkt.serialize();
  req.sig = victim_kp_.sign(ByteSpan(req.offending_packet.data(),
                                     req.offending_packet.size()));
  req.dst_cert = victim_cert_;
  return req;
}

void Engine::do_shutoff_storm(const Phase& p, PhaseReport& r) {
  const std::uint64_t live = next_hid_ - first_hid_;
  if (live == 0 || p.requests == 0) return;
  // A small attacker pool: enough requests per host to trip the §VIII-G2
  // escalation threshold mid-storm.
  const std::uint64_t attackers = std::min<std::uint64_t>(8, live);
  std::vector<double> lat_us;
  lat_us.reserve(p.requests);
  for (std::uint64_t q = 0; q < p.requests; ++q) {
    const core::Hid attacker =
        first_hid_ + static_cast<core::Hid>(q % attackers);
    const auto req = make_storm_request(attacker,
                                        static_cast<std::uint32_t>(q));
    const auto t0 = WallClock::now();
    (void)aa_->process(req, now_);
    lat_us.push_back(seconds_since(t0) * 1e6);
  }
  r.shutoff_requests += p.requests;
  std::sort(lat_us.begin(), lat_us.end());
  r.wall_shutoff_p50_us = lat_us[lat_us.size() / 2];
  r.wall_shutoff_p99_us = lat_us[lat_us.size() * 99 / 100];
}

void Engine::do_revocation_wave(const Phase& p, PhaseReport& r) {
  const std::uint64_t live = next_hid_ - first_hid_;
  if (live == 0 || p.revocations == 0) return;
  const auto ws = build_working_set(cfg_.active_flows);
  ZipfPicker zipf(ws.size(), p.zipf_s, rng_.next_u64());
  std::vector<wire::PacketView> burst(p.burst_packets);
  const std::uint64_t per_wave = std::max<std::uint64_t>(
      1, p.revocations / p.waves);
  std::uint64_t applied = 0;
  for (std::uint64_t w = 0; w < p.waves && applied < p.revocations; ++w) {
    for (std::uint64_t i = 0; i < per_wave && applied < p.revocations; ++i) {
      core::EphId ephid;
      core::Hid hid;
      if (i == 0 && w < ws.size()) {
        // Each wave also kills one ACTIVE working-set flow, so the
        // following bursts show real drop_revoked traffic, not just the
        // epoch-invalidation miss storm.
        ephid = ws[w].ephid;
        hid = ws[w].hid;
      } else {
        hid = first_hid_ + static_cast<core::Hid>(rng_.next_u64() % live);
        ephid = as_->codec.issue(hid, now_ + 7200, rng_);
      }
      as_->revoked.revoke_ephid(ephid, now_ + 7200, hid);
      core::emit_revoke_ephid(persist_sink_, ephid, now_ + 7200, hid);
      ++applied;
    }
    // The wave bumped VerdictEpoch `per_wave` times: every cached verdict
    // in every worker is now stale. These bursts measure the collapse and
    // the re-verification recovery.
    for (std::uint64_t b = 0; b < p.bursts; ++b) {
      for (auto& v : burst) v = ws[zipf.next()].buf.view();
      pool_->process_outgoing(burst, now_);
      r.packets += burst.size();
    }
    ++now_;
  }
  r.revocations_applied += applied;
}

void Engine::do_replay_tamper(const Phase& p, PhaseReport& r) {
  if (next_hid_ == first_hid_ || p.bursts == 0 || p.burst_packets == 0) return;
  // A dedicated replay-filter router (§VIII-D egress filtering) over the
  // same AS state; the main pool stays filter-free so flood/traffic phases
  // measure the Fig 4 pipeline alone.
  router::BorderRouter::Callbacks cb;
  cb.send_external = [](wire::PacketBuf) { return Result<void>::success(); };
  cb.deliver_internal = [](core::Hid, wire::PacketBuf) {
    return Result<void>::success();
  };
  cb.now = [this] { return now_; };
  router::BorderRouter::Config rc;
  rc.replay_filter = true;
  rc.send_icmp_errors = false;
  router::BorderRouter rbr(*as_, std::move(cb), rc);

  const auto ws = build_working_set(std::min<std::size_t>(cfg_.active_flows, 64));
  std::vector<std::uint64_t> next_nonce(ws.size(), 1);
  std::vector<wire::PacketBuf> bufs;
  std::vector<wire::PacketView> views;
  std::vector<router::BorderRouter::Verdict> verdicts;
  for (std::uint64_t b = 0; b < p.bursts; ++b) {
    bufs.clear();
    views.clear();
    for (std::uint64_t i = 0; i < p.burst_packets; ++i) {
      const std::size_t fi = rng_.next_u32() % ws.size();
      const SealedFlow& f = ws[fi];
      const std::uint32_t kind = rng_.next_u32() % 4;
      wire::Packet pkt;
      pkt.src_aid = cfg_.aid;
      pkt.dst_aid = cfg_.remote_aid;
      pkt.src_ephid = f.ephid.bytes;
      rng_.fill(MutByteSpan(pkt.dst_ephid.data(), 16));
      pkt.proto = wire::NextProto::data;
      pkt.payload = rng_.bytes(48);
      // kind 0/2: fresh nonce. kind 1: replay the flow's previous nonce.
      // kind 3: fresh nonce, then tamper after stamping (drop_bad_mac).
      const std::uint64_t nonce =
          (kind == 1 && next_nonce[fi] > 1) ? next_nonce[fi] - 1
                                            : next_nonce[fi]++;
      pkt.set_nonce(nonce);
      core::stamp_packet_mac(
          crypto::AesCmac(ByteSpan(host_keys(f.hid).mac.data(), 16)), pkt);
      if (kind == 3 && !pkt.payload.empty()) pkt.payload[0] ^= 0x5a;
      bufs.push_back(pkt.seal());
    }
    for (const wire::PacketBuf& buf : bufs) views.push_back(buf.view());
    verdicts.assign(views.size(), router::BorderRouter::Verdict{});
    rbr.classify_outgoing_burst(views, now_, verdicts, replay_extra_, true,
                                nullptr);
    for (const auto& v : verdicts)
      if (v.err == Errc::ok) ++replay_extra_.forwarded_out;
    r.packets += views.size();
    ++now_;
  }
}

void Engine::ensure_dns() {
  if (dns_resolver_) return;
  dns_zone_ = std::make_unique<services::DnsZone>(cfg_.shard_count);
  dns::Resolver::Config rc;
  // Deliberately much smaller than the published working set can grow: the
  // storm has to contend for slots or the bounds being proven are vacuous.
  rc.cache.capacity = 1 << 14;
  dns_resolver_ = std::make_unique<dns::Resolver>(*dns_zone_, loop_, rc);
  if (persist_sink_ != nullptr) {
    dns_zone_->set_persist_sink(persist_sink_);
    dns_resolver_->set_persist_sink(persist_sink_);
  }
}

namespace {
std::string scenario_dns_name(std::uint64_t i) {
  return "h" + std::to_string(i) + ".svc.apna.example";
}
}  // namespace

void Engine::do_dns_storm(const Phase& p, PhaseReport& r) {
  ensure_dns();
  // Top up the positive working set (records carry an unsigned cert — the
  // resolver path under test does not verify publication signatures).
  for (std::uint64_t i = dns_names_; i < p.joins; ++i) {
    core::DnsRecord rec;
    rec.name = scenario_dns_name(i);
    rec.ipv4 = static_cast<std::uint32_t>(i + 1);
    rec.cert.aid = cfg_.aid;
    rec.cert.exp_time = now_ + 86400;
    dns_zone_->put(rec);
  }
  dns_names_ = std::max(dns_names_, p.joins);

  const auto before = dns_resolver_->stats();
  ZipfPicker zipf(static_cast<std::size_t>(dns_names_), p.zipf_s,
                  rng_.next_u64());
  auto positive_pass = [&] {
    for (std::uint64_t b = 0; b < p.bursts; ++b) {
      for (std::uint64_t k = 0; k < p.burst_packets; ++k)
        dns_resolver_->resolve(scenario_dns_name(zipf.next()), now_);
      ++now_;
    }
  };
  positive_pass();  // warm the cache with the legitimate distribution

  // The storm: random junk names, every one an NXDOMAIN. These MUST land in
  // the negative cache's bounded slice — never evict positives past it.
  for (std::uint64_t i = 0; i < p.requests; ++i) {
    char junk[20];
    std::snprintf(junk, sizeof junk, "x%016llx",
                  static_cast<unsigned long long>(rng_.next_u64()));
    dns_resolver_->resolve(std::string(junk) + ".flood.example", now_);
  }

  // Recovery: the same positive distribution again — its hit rate is the
  // "cache survived the storm" signal.
  const auto mid = dns_resolver_->stats();
  positive_pass();
  const auto after = dns_resolver_->stats();

  r.packets += after.lookups - before.lookups;
  r.dns_lookups = after.lookups - before.lookups;
  r.dns_cache_hits = after.cache_hits - before.cache_hits;
  r.dns_negative_hits = after.negative_hits - before.negative_hits;
  r.dns_zone_hits = after.zone_hits - before.zone_hits;
  r.dns_nxdomain = after.nxdomain - before.nxdomain;
  r.dns_negative_entries = dns_resolver_->cache().negative_size();
  r.dns_negative_capacity = dns_resolver_->cache().negative_capacity();
  const std::uint64_t rec_lookups = after.lookups - mid.lookups;
  const std::uint64_t rec_hits = after.cache_hits - mid.cache_hits;
  r.dns_recovery_hit_rate =
      rec_lookups ? static_cast<double>(rec_hits) / rec_lookups : 0.0;
}

void Engine::do_kill_recover(const Phase& p, PhaseReport& r) {
  if (!persist_coord_) return;  // requires Config::persist
  const std::uint64_t live = next_hid_ - first_hid_;

  // --- Pre-kill mutations, straddling a snapshot --------------------------
  // A revocation wave lands in the CURRENT generation's journal...
  std::vector<std::pair<core::EphId, core::Hid>> revoked;
  revoked.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(p.revocations, 1024)));
  for (std::uint64_t i = 0; i < p.revocations && live > 0; ++i) {
    const core::Hid hid =
        first_hid_ + static_cast<core::Hid>(rng_.next_u64() % live);
    const core::EphId ephid = as_->codec.issue(hid, now_ + 7200, rng_);
    as_->revoked.revoke_ephid(ephid, now_ + 7200, hid);
    core::emit_revoke_ephid(persist_sink_, ephid, now_ + 7200, hid);
    if (revoked.size() < 1024) revoked.emplace_back(ephid, hid);
    ++r.revocations_applied;
  }

  // ... then the snapshot rotates the journal, so everything below lives
  // only in the journal SUFFIX — recovery has to get both paths right.
  (void)persist_coord_->write_snapshot();

  ensure_dns();
  for (std::uint64_t i = dns_names_; i < p.joins; ++i) {
    core::DnsRecord rec;
    rec.name = scenario_dns_name(i);
    rec.ipv4 = static_cast<std::uint32_t>(i + 1);
    rec.cert.aid = cfg_.aid;
    rec.cert.exp_time = now_ + 86400;
    dns_zone_->put(rec);  // journaled through the zone's sink
  }
  dns_names_ = std::max(dns_names_, p.joins);

  // Fig-5 domain blocks over the freshly published head: each installs a
  // policy rule (journaled) and sweeps the record out of the zone (the
  // erase is journaled too).
  for (std::uint64_t i = 0; i < p.requests && i < dns_names_; ++i)
    dns_resolver_->block_domain(scenario_dns_name(i), now_);

  (void)persist_coord_->commit();  // the durability line the kill tests

  // --- Probe the pre-kill world -------------------------------------------
  const std::uint64_t probes = std::max<std::uint64_t>(1, p.bursts);

  // Forwarding probes: sealed packets from sampled live hosts, every 4th
  // one from a just-revoked EphID so both forward and drop verdicts cross
  // the kill. Built once; the same wire images classify on both sides.
  std::vector<wire::PacketBuf> fwd_bufs;
  const std::size_t fwd_n = static_cast<std::size_t>(
      std::min<std::uint64_t>(probes, 256));
  for (std::size_t i = 0; i < fwd_n && live > 0; ++i) {
    core::Hid hid;
    core::EphId ephid;
    if (i % 4 == 3 && !revoked.empty()) {
      const auto& [re, rh] = revoked[i % revoked.size()];
      ephid = re;
      hid = rh;
    } else {
      hid = first_hid_ + static_cast<core::Hid>((live * i) / fwd_n);
      ephid = as_->codec.issue(hid, now_ + 7200, rng_);
    }
    wire::Packet pkt;
    pkt.src_aid = cfg_.aid;
    pkt.dst_aid = cfg_.remote_aid;
    pkt.src_ephid = ephid.bytes;
    rng_.fill(MutByteSpan(pkt.dst_ephid.data(), 16));
    pkt.proto = wire::NextProto::data;
    pkt.payload = rng_.bytes(48);
    core::stamp_packet_mac(
        crypto::AesCmac(ByteSpan(host_keys(hid).mac.data(), 16)), pkt);
    fwd_bufs.push_back(pkt.seal());
  }

  // One deterministic answer blob per probe; pre and post must be equal
  // element-wise. Probes: host records (presence + kHA keys), revocation
  // verdicts, DNS zone bytes + policy verdicts, forwarding Errc stream.
  const auto build_probes = [&] {
    std::vector<Bytes> out;
    for (std::uint64_t i = 0; i < probes && live > 0; ++i) {
      const core::Hid hid =
          first_hid_ + static_cast<core::Hid>((live * i) / probes);
      Bytes b;
      if (auto h = as_->host_db.find(hid)) {
        b.push_back(1);
        b.insert(b.end(), h->keys.enc.begin(), h->keys.enc.end());
        b.insert(b.end(), h->keys.mac.begin(), h->keys.mac.end());
      } else {
        b.push_back(0);  // §VIII-G2 escalation may have erased it
      }
      b.push_back(as_->revoked.is_hid_revoked(hid) ? 1 : 0);
      out.push_back(std::move(b));
    }
    for (const auto& [ephid, hid] : revoked) {
      (void)hid;
      out.push_back(Bytes{as_->revoked.is_revoked(ephid)
                              ? std::uint8_t{1}
                              : std::uint8_t{0}});
    }
    const std::uint64_t dn = std::min<std::uint64_t>(dns_names_, probes);
    for (std::uint64_t i = 0; i < dn; ++i) {
      const std::string name = scenario_dns_name(i);
      Bytes b;
      b.push_back(dns_resolver_->policy().blocked(name, nullptr) ? 1 : 0);
      if (auto rec = dns_zone_->get(name)) {
        b.push_back(1);
        const Bytes rb = rec->serialize();
        b.insert(b.end(), rb.begin(), rb.end());
      } else {
        b.push_back(0);  // swept by a block, or never published
      }
      out.push_back(std::move(b));
    }
    {
      // Classify through a fresh checks-only router each time so the
      // verdicts come straight from AsState, never a warmed cache.
      router::BorderRouter::Callbacks cb;
      cb.send_external = [](wire::PacketBuf) { return Result<void>::success(); };
      cb.deliver_internal = [](core::Hid, wire::PacketBuf) {
        return Result<void>::success();
      };
      cb.now = [this] { return now_; };
      router::BorderRouter::Config rc;
      rc.send_icmp_errors = false;
      router::BorderRouter probe_br(*as_, std::move(cb), rc);
      std::vector<wire::PacketView> views;
      views.reserve(fwd_bufs.size());
      for (const wire::PacketBuf& buf : fwd_bufs) views.push_back(buf.view());
      std::vector<router::BorderRouter::Verdict> verdicts(views.size());
      router::BorderRouter::Stats scratch;
      probe_br.classify_outgoing_burst(views, now_, verdicts, scratch, true,
                                       nullptr);
      Bytes fp;
      fp.reserve(verdicts.size());
      for (const auto& v : verdicts)
        fp.push_back(static_cast<std::uint8_t>(v.err));
      out.push_back(std::move(fp));
    }
    return out;
  };
  const std::vector<Bytes> pre = build_probes();

  const auto pre_stats = persist_coord_->stats();
  r.persist_records_appended = pre_stats.journal.appended;
  r.persist_snapshots_written = pre_stats.snapshots_written;

  // --- Kill: drop every in-memory structure above the Vfs -----------------
  persist_coord_.reset();
  persist_sink_ = nullptr;
  pool_.reset();
  br_.reset();
  aa_.reset();
  rs_.reset();
  dns_resolver_.reset();
  dns_zone_.reset();
  as_.reset();

  // --- Recover ------------------------------------------------------------
  auto recovered = core::AsState::recover(*vfs_, "as-" + std::to_string(cfg_.aid),
                                          cfg_.max_revocations_per_host,
                                          cfg_.shard_count);
  core::AsStateRecovery rv;
  if (recovered) {
    rv = recovered.take();
    as_ = std::move(rv.as);
  } else {
    // Must not happen — rebuild an empty world so the engine stays usable
    // and let the mismatch count flag the failure loudly.
    as_ = std::make_unique<core::AsState>(cfg_.aid,
                                          core::AsSecrets::generate(rng_),
                                          cfg_.max_revocations_per_host,
                                          cfg_.shard_count);
  }
  r.persist_snapshot_generation = rv.snapshot_generation;
  r.journal_records_replayed = rv.journal_records_replayed;
  r.journal_bytes_discarded = rv.journal_bytes_discarded;
  r.recovered_hosts = as_->host_db.size();
  r.recovered_revocations = as_->revoked.size();
  r.recovered_dns_records = rv.dns_records.size();
  r.recovered_domain_blocks = rv.blocked_domains.size();

  // Rebuild the infrastructure over the recovered state — the same
  // sequence as construction, so the rebuilt world is deterministic.
  rs_ = std::make_unique<services::RegistryService>(*as_, subs_, loop_, rng_);
  auto aa_ident = services::make_service_identity(
      *as_, rs_->allocate_hid(), loop_.now_seconds() + 30 * 86400, 0, nullptr,
      rng_);
  aa_ = std::make_unique<services::AccountabilityAgent>(*as_, dir_, loop_,
                                                        std::move(aa_ident));
  router::BorderRouter::Callbacks cb;
  cb.send_external = [](wire::PacketBuf) { return Result<void>::success(); };
  cb.deliver_internal = [](core::Hid, wire::PacketBuf) {
    return Result<void>::success();
  };
  cb.now = [this] { return now_; };
  br_ = std::make_unique<router::BorderRouter>(*as_, std::move(cb));
  router::ForwardingPool::Config fpc;
  fpc.threads = cfg_.threads;
  fpc.flow_cache_entries = cfg_.flow_cache_entries;
  pool_ = std::make_unique<router::ForwardingPool>(*br_, fpc);

  // Reinstall the recovered above-core state into a fresh DNS world (no
  // sink yet — these are restorations, not new mutations to journal).
  ensure_dns();
  for (const core::DnsRecord& rec : rv.dns_records) dns_zone_->put(rec);
  for (const std::string& d : rv.blocked_domains)
    dns_resolver_->policy().block(d);

  // New coordinator over the recovered world: seeds carry what the
  // pre-crash AS vouched for, and start() publishes the post-recovery
  // snapshot generation.
  attach_persistence(std::move(rv.issued), std::move(rv.blocked_domains),
                     std::move(rv.dns_records));
  r.persist_snapshots_written += persist_coord_->stats().snapshots_written;

  // The rebuilt pool/AA counters start from zero — rebase the per-phase
  // delta baselines or the next phase's deltas underflow.
  last_router_ = {};
  last_cache_ = {};
  last_aa_ = {};

  // --- Re-probe and compare ----------------------------------------------
  const std::vector<Bytes> post = build_probes();
  r.verdict_probes = pre.size();
  const std::size_t n = std::min(pre.size(), post.size());
  for (std::size_t i = 0; i < n; ++i)
    if (pre[i] != post[i]) ++r.verdict_mismatches;
  r.verdict_mismatches += pre.size() > post.size() ? pre.size() - post.size()
                                                   : post.size() - pre.size();
}

void Engine::snapshot_world(PhaseReport& r) const {
  r.epoch = as_->epoch.current();
  r.live_hosts = as_->host_db.size();
  r.revoked_entries = as_->revoked.size();
  const auto mem = as_->host_db.memory_stats();
  r.host_db_bytes = mem.total();
  r.host_db_bytes_per_host = mem.bytes_per_host();
  r.revocation_bytes = as_->revoked.memory_bytes();
}

PhaseReport Engine::run_phase(const Phase& p) {
  PhaseReport r;
  r.name = p.name;
  r.kind = p.kind_name();
  const auto t0 = WallClock::now();
  switch (p.kind) {
    case Phase::Kind::register_hosts:
      do_register(p.joins, r);
      break;
    case Phase::Kind::churn:
    case Phase::Kind::flash_crowd:
      do_register(p.joins, r);
      do_leave(p.leaves, r);
      do_traffic(p, r);
      break;
    case Phase::Kind::traffic:
      do_traffic(p, r);
      break;
    case Phase::Kind::flood:
      do_flood(p, r);
      break;
    case Phase::Kind::shutoff_storm:
      do_shutoff_storm(p, r);
      break;
    case Phase::Kind::revocation_wave:
      do_revocation_wave(p, r);
      break;
    case Phase::Kind::replay_tamper:
      do_replay_tamper(p, r);
      break;
    case Phase::Kind::dns_storm:
      do_dns_storm(p, r);
      break;
    case Phase::Kind::kill_recover:
      do_kill_recover(p, r);
      break;
  }
  // Phase boundary = durability boundary: everything the phase journaled
  // is committed before its report exists.
  if (persist_coord_) (void)persist_coord_->commit();
  r.wall_seconds = seconds_since(t0);
  if (r.packets > 0 && r.wall_seconds > 0)
    r.wall_pps = static_cast<double>(r.packets) / r.wall_seconds;

  // Per-phase deltas of the monotone counter sets.
  auto cur_router = pool_->stats();
  auto cur_cache = pool_->flow_cache_stats();
  const auto cur_aa = aa_->stats();
  const auto cur_rx = router_rx_->stats();
  r.router = cur_router;
  r.router -= last_router_;
  last_router_ = cur_router;
  r.router += replay_extra_;  // replay phases classify outside the pool
  replay_extra_ = {};
  r.cache = cur_cache;
  r.cache -= last_cache_;
  // cross_worker_duplicates is a GAUGE over current cache contents, not a
  // monotone counter — report the current value, not a delta.
  r.cache.cross_worker_duplicates = cur_cache.cross_worker_duplicates;
  last_cache_ = cur_cache;
  r.aa_accepted = cur_aa.accepted - last_aa_.accepted;
  r.aa_rejected = aa_rejected_sum(cur_aa) - aa_rejected_sum(last_aa_);
  r.aa_hid_escalations = cur_aa.hid_escalations - last_aa_.hid_escalations;
  last_aa_ = cur_aa;
  r.rx_rejected = cur_rx.rx_rejected - last_rx_.rx_rejected;
  r.rx_delivered = cur_rx.rx_packets - last_rx_.rx_packets;
  last_rx_ = cur_rx;

  snapshot_world(r);
  ++now_;  // phase boundary tick
  return r;
}

std::vector<PhaseReport> Engine::run_script(const std::vector<Phase>& script) {
  std::vector<PhaseReport> out;
  out.reserve(script.size());
  for (const Phase& p : script) out.push_back(run_phase(p));
  return out;
}

// ---- Canned scripts ----------------------------------------------------------

std::vector<Phase> internet_scale_script(std::uint64_t hosts,
                                         std::uint64_t traffic_bursts) {
  // Joins total 117% of `hosts`, leaves 7% — the population ends ≥ `hosts`
  // live after a full diurnal cycle.
  const std::uint64_t b = std::max<std::uint64_t>(1, traffic_bursts);
  return {
      Phase::register_hosts("provision_base", hosts),
      Phase::traffic("morning_traffic", b, 256),
      Phase::churn("diurnal_day", hosts / 10, hosts / 20, b / 2 + 1, 256),
      Phase::flash_crowd("flash_crowd", hosts / 20, b, 512),
      Phase::churn("diurnal_night", hosts / 50, hosts / 50, b / 2 + 1, 256),
      Phase::traffic("steady_state", b, 256),
  };
}

std::vector<Phase> attack_storms_script(std::uint64_t hosts, bool smoke) {
  const std::uint64_t b = smoke ? 8 : 64;
  const std::uint64_t storm_requests = smoke ? 160 : 4000;
  const std::uint64_t wave_revocations = smoke ? 10'000 : 100'000;
  return {
      Phase::register_hosts("provision", hosts),
      Phase::traffic("baseline_traffic", b, 256),
      Phase::flood("bogus_ephid_flood", b, 512, 0.80, 0.10),
      Phase::traffic("recovery_after_flood", b, 256),
      Phase::shutoff_storm("fig5_shutoff_storm", storm_requests),
      Phase::revocation_wave("mass_revocation", wave_revocations, 8, b / 4 + 1,
                             256),
      Phase::traffic("recovery_after_revocation", b, 256),
      Phase::replay_tamper("replay_tamper", b, 256),
  };
}

std::vector<Phase> dns_storm_script(std::uint64_t names, bool smoke) {
  const std::uint64_t b = smoke ? 8 : 64;
  const std::uint64_t junk = smoke ? 50'000 : 2'000'000;
  return {
      // Baseline: publish + warm with no storm (recovery rate here is the
      // healthy reference).
      Phase::dns_storm("dns_baseline", names, 0, b, 512),
      // The storm proper: junk NXDOMAIN flood between the two positive
      // passes.
      Phase::dns_storm("dns_nxdomain_storm", names, junk, b, 512),
      // Post-storm steady state: bounds held, hit rate back to baseline.
      Phase::dns_storm("dns_recovery", names, 0, b, 512),
  };
}

std::vector<Phase> kill_recover_script(std::uint64_t hosts, bool smoke) {
  const std::uint64_t b = smoke ? 8 : 32;
  return {
      Phase::register_hosts("provision", hosts),
      Phase::traffic("warm_traffic", b, 256),
      // Fig-5 storm first: §VIII-G2 escalations erase HostDb entries, so
      // recovery has to reproduce absences as well as records.
      Phase::shutoff_storm("fig5_storm", smoke ? 80 : 800),
      Phase::kill_recover("kill_recover",
                          /*revocations=*/smoke ? 5'000 : 50'000,
                          /*domain_blocks=*/smoke ? 50 : 500,
                          /*dns_names=*/smoke ? 2'000 : 20'000,
                          /*probes=*/smoke ? 512 : 4'096),
      // The recovered world must still forward: same traffic shape as the
      // warm phase, classified by the rebuilt pool over recovered state.
      Phase::traffic("post_recovery_traffic", b, 256),
  };
}

// ---- Multi-AS sweep ----------------------------------------------------------

MultiAsReport run_multi_as(const MultiAsConfig& cfg) {
  const auto t0 = WallClock::now();
  crypto::ChaChaRng rng(cfg.seed);
  constexpr core::Hid kFirstHid = 65536;
  constexpr core::ExpTime kNow = net::kEpochSeconds;

  // The handful of hosts per AS that also source/sink traffic (only these
  // need their kHA MAC keys kept around). They are the YOUNGEST of the
  // initial population, so diurnal churn (which retires the oldest) never
  // invalidates a flow endpoint.
  const std::uint64_t flows_per_as = std::min<std::uint64_t>(
      32, std::max<std::uint64_t>(1, cfg.hosts_per_as));
  std::uint64_t churn_per_as = static_cast<std::uint64_t>(
      static_cast<double>(cfg.hosts_per_as) * cfg.churn_fraction);
  if (churn_per_as + flows_per_as > cfg.hosts_per_as)
    churn_per_as = cfg.hosts_per_as - flows_per_as;

  struct AsNode {
    std::unique_ptr<core::AsState> as;
    std::unique_ptr<router::BorderRouter> br;
    std::vector<core::HostAsKeys> flow_keys;  // flow_base + i ↔ flow_keys[i]
    core::Hid flow_base = 0;
    core::Hid first = kFirstHid, next = kFirstHid;
  };

  auto add_host = [&rng](AsNode& n) {
    core::HostRecord rec;
    rec.hid = n.next++;
    rng.fill(MutByteSpan(rec.keys.enc.data(), rec.keys.enc.size()));
    rng.fill(MutByteSpan(rec.keys.mac.data(), rec.keys.mac.size()));
    rec.subscriber_id = 1;
    n.as->host_db.upsert(rec);
    return rec.keys;
  };

  std::vector<AsNode> nodes(cfg.as_count);
  for (std::size_t k = 0; k < cfg.as_count; ++k) {
    AsNode& n = nodes[k];
    n.as = std::make_unique<core::AsState>(
        static_cast<core::Aid>(1000 + k), core::AsSecrets::generate(rng), 16,
        cfg.shard_count);
    router::BorderRouter::Callbacks cb;  // checks-only: no edges installed
    cb.now = [] { return kNow; };
    n.br = std::make_unique<router::BorderRouter>(*n.as, std::move(cb));
    n.flow_base = kFirstHid +
                  static_cast<core::Hid>(cfg.hosts_per_as - flows_per_as);
    for (std::uint64_t i = 0; i < cfg.hosts_per_as; ++i) {
      const auto keys = add_host(n);
      if (n.next - 1 >= n.flow_base) n.flow_keys.push_back(keys);
    }
  }

  MultiAsReport rep;
  rep.as_count = cfg.as_count;

  // Diurnal churn: a fraction of each AS's oldest hosts leave (each erase
  // bumps that AS's VerdictEpoch) and a same-size cohort of new ones joins
  // under fresh HIDs (§VI-A forbids reusing a HID for a new customer).
  for (AsNode& n : nodes) {
    for (std::uint64_t i = 0; i < churn_per_as && n.first < n.next; ++i)
      n.as->host_db.erase(n.first++);
    for (std::uint64_t i = 0; i < churn_per_as; ++i) add_host(n);
    rep.churned += 2 * churn_per_as;
  }

  // Inter-AS traffic: source egress (Fig 4 bottom) at the source AS,
  // AID-only transit at a mid-path AS, ingress (Fig 4 top) at the
  // destination. Counted from the verdicts — checks-only, no edges.
  if (cfg.as_count >= 2) {
    std::vector<wire::PacketBuf> bufs;
    std::vector<wire::PacketView> views;
    std::vector<router::BorderRouter::Verdict> verdicts;
    router::BorderRouter::Stats sink;
    for (std::uint64_t b = 0; b < cfg.bursts; ++b) {
      AsNode& src = nodes[b % cfg.as_count];
      AsNode& dst = nodes[(b + 1 + rng.next_u32() % (cfg.as_count - 1)) %
                          cfg.as_count];
      if (&src == &dst) continue;
      AsNode& mid = nodes[(b + cfg.as_count / 2) % cfg.as_count];
      bufs.clear();
      views.clear();
      for (std::uint64_t i = 0; i < cfg.burst_packets; ++i) {
        const std::size_t fi = rng.next_u32() % src.flow_keys.size();
        wire::Packet pkt;
        pkt.src_aid = src.as->aid;
        pkt.dst_aid = dst.as->aid;
        pkt.src_ephid =
            src.as->codec
                .issue(src.flow_base + static_cast<core::Hid>(fi), kNow + 900,
                       rng)
                .bytes;
        pkt.dst_ephid =
            dst.as->codec
                .issue(dst.flow_base + static_cast<core::Hid>(
                                           rng.next_u32() %
                                           dst.flow_keys.size()),
                       kNow + 900, rng)
                .bytes;
        pkt.proto = wire::NextProto::data;
        pkt.payload = rng.bytes(48);
        core::stamp_packet_mac(
            crypto::AesCmac(ByteSpan(src.flow_keys[fi].mac.data(), 16)), pkt);
        bufs.push_back(pkt.seal());
        views.push_back(bufs.back().view());
      }
      verdicts.assign(views.size(), router::BorderRouter::Verdict{});
      src.br->classify_outgoing_burst(views, kNow, verdicts, sink, true);
      for (const auto& v : verdicts) {
        if (v.err == Errc::ok) ++rep.forwarded_out;
        else ++rep.total_drops;
      }
      verdicts.assign(views.size(), router::BorderRouter::Verdict{});
      mid.br->classify_ingress_burst(views, kNow, verdicts, sink, true);
      for (const auto& v : verdicts)
        if (v.err == Errc::ok && !v.local) ++rep.transited;
      verdicts.assign(views.size(), router::BorderRouter::Verdict{});
      dst.br->classify_ingress_burst(views, kNow, verdicts, sink, true);
      for (const auto& v : verdicts) {
        if (v.err == Errc::ok && v.local) ++rep.delivered_in;
        else if (v.err != Errc::ok) ++rep.total_drops;
      }
    }
  }

  for (const AsNode& n : nodes) {
    const auto mem = n.as->host_db.memory_stats();
    rep.total_hosts += mem.hosts;
    rep.total_host_db_bytes += mem.total();
    rep.max_bytes_per_host =
        std::max(rep.max_bytes_per_host, mem.bytes_per_host());
  }
  rep.mean_bytes_per_host =
      rep.total_hosts == 0
          ? 0.0
          : static_cast<double>(rep.total_host_db_bytes) /
                static_cast<double>(rep.total_hosts);
  rep.wall_seconds = seconds_since(t0);
  return rep;
}

}  // namespace apna::scenario

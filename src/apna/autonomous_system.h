// AutonomousSystem — one AS's complete APNA deployment (Fig 1):
// Registry Service, Management Service, Accountability Agent, DNS service,
// border router, intra-domain switch, plus the customer hosts attached to
// it. Wires everything to the simulated network and registers the AS's
// public keys in the directory (RPKI stand-in).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/as_directory.h"
#include "core/as_state.h"
#include "host/host.h"
#include "net/network.h"
#include "net/sim.h"
#include "net/topology.h"
#include "dns/dns_service.h"
#include "dns/resolver.h"
#include "persist/sink.h"
#include "router/border_router.h"
#include "services/accountability_agent.h"
#include "services/dns_zone.h"
#include "services/management_service.h"
#include "services/registry_service.h"
#include "services/service_runtime.h"
#include "services/subscriber_registry.h"

namespace apna {

class AutonomousSystem {
 public:
  struct Config {
    core::Aid aid = 0;
    std::string name;
    std::uint64_t rng_seed = 0;  // 0 = derived from aid
    net::TimeUs intra_hop_latency_us = 50;
    services::ManagementService::LifetimePolicy lifetimes{};
    router::BorderRouter::Config br{};
    services::RegistryService::Config rs{};
    dns::Resolver::Config dns{};
  };

  AutonomousSystem(Config cfg, net::EventLoop& loop, net::Topology& topo,
                   net::InterAsNetwork& network, core::AsDirectory& directory,
                   services::DnsZone& zone);

  AutonomousSystem(const AutonomousSystem&) = delete;
  AutonomousSystem& operator=(const AutonomousSystem&) = delete;

  /// Enrolls a subscriber, creates its host, bootstraps it (Fig 2) and
  /// attaches it to the intra-domain switch.
  host::Host& add_host(const std::string& name,
                       host::Granularity granularity = host::Granularity::per_flow,
                       crypto::AeadSuite suite =
                           crypto::AeadSuite::chacha20_poly1305);

  /// Attaches an externally created node (e.g. an access point) as if it
  /// were a host: enrolls a subscriber and returns the bootstrap hook plus
  /// uplink. Used by the gateway module (§VII-B).
  struct Attachment {
    host::Host::BootstrapFn bootstrap;
    host::Host::SendFn uplink;
  };
  Attachment make_attachment();

  /// Enrolls a new subscriber account (for externally constructed hosts,
  /// access points and gateways). Returns the login credentials.
  struct SubscriberAccount {
    std::uint32_t subscriber_id;
    Bytes credential;
  };
  SubscriberAccount enroll_subscriber() {
    SubscriberAccount acc;
    acc.subscriber_id = next_subscriber_++;
    acc.credential = rng_.bytes(16);
    subs_.add_subscriber(acc.subscriber_id, acc.credential);
    return acc;
  }

  /// Registers a packet handler for an already-bootstrapped HID.
  void attach_port(core::Hid hid, net::PacketHandler handler);

  /// Wires the durability hook through every control-plane mutation site
  /// this AS owns (RS bootstrap, MS issuance, AA revocation, zone
  /// put/erase, resolver domain blocks). nullptr detaches — the default,
  /// so the hot paths keep their allocation gates. The shared DnsZone is
  /// included: in multi-AS deployments attach persistence to ONE AS (the
  /// zone's operator) or records duplicate.
  void set_persist_sink(persist::Sink* sink);

  /// Routes a packet originating inside this AS (host or service uplink).
  /// Consumes the buffer — it moves through the BR unchanged.
  void route_from_inside(wire::PacketBuf pkt);

  core::Aid aid() const { return cfg_.aid; }
  core::AsState& state() { return *state_; }
  const core::AsState& state() const { return *state_; }
  services::RegistryService& rs() { return *rs_; }
  services::ManagementService& ms() { return *ms_; }
  services::AccountabilityAgent& aa() { return *aa_; }
  dns::DnsService& dns() { return *dns_; }
  /// This AS's resolver: shared-zone lookups through the per-AS cache and
  /// domain policy (wired into the AA's DomainPolicy hook).
  dns::Resolver& resolver() { return *resolver_; }
  /// The control-plane fabric: routes inbound control packets to the
  /// service owning the destination EphID (MS, AA, DNS).
  services::ServiceDispatcher& dispatcher() { return *dispatcher_; }
  router::BorderRouter& br() { return *br_; }
  net::IntraSwitch& intra_switch() { return *switch_; }
  services::SubscriberRegistry& subscribers() { return subs_; }
  net::EventLoop& loop() { return loop_; }
  core::AsDirectory& directory_ref() { return directory_; }
  crypto::Rng& rng() { return rng_; }
  const std::vector<std::unique_ptr<host::Host>>& hosts() const {
    return hosts_;
  }

 private:
  Config cfg_;
  net::EventLoop& loop_;
  net::Topology& topo_;
  net::InterAsNetwork& network_;
  core::AsDirectory& directory_;
  crypto::ChaChaRng rng_;

  std::unique_ptr<core::AsState> state_;
  services::SubscriberRegistry subs_;
  std::unique_ptr<net::IntraSwitch> switch_;
  std::unique_ptr<services::RegistryService> rs_;
  std::unique_ptr<services::ManagementService> ms_;
  std::unique_ptr<services::AccountabilityAgent> aa_;
  std::unique_ptr<dns::Resolver> resolver_;
  std::unique_ptr<dns::DnsService> dns_;
  std::unique_ptr<services::ServiceDispatcher> dispatcher_;
  std::unique_ptr<router::BorderRouter> br_;

  std::vector<std::unique_ptr<host::Host>> hosts_;
  std::uint32_t next_subscriber_ = 1000;
};

}  // namespace apna

// Internet — the top-level simulation harness: one event loop, an AS-level
// topology, the inter-AS fabric, the global AS directory (RPKI stand-in)
// and a shared DNS zone. Examples, tests and benchmarks build their worlds
// through this class.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "apna/autonomous_system.h"

namespace apna {

class Internet {
 public:
  explicit Internet(std::uint64_t seed = 1)
      : seed_(seed), network_(loop_, topo_) {}

  /// Creates an AS with default configuration.
  AutonomousSystem& add_as(core::Aid aid, const std::string& name) {
    AutonomousSystem::Config cfg;
    cfg.aid = aid;
    cfg.name = name;
    cfg.rng_seed = seed_ * 1'000'003 + aid;
    return add_as(std::move(cfg));
  }

  AutonomousSystem& add_as(AutonomousSystem::Config cfg) {
    auto as = std::make_unique<AutonomousSystem>(std::move(cfg), loop_, topo_,
                                                 network_, directory_, zone_);
    AutonomousSystem* ptr = as.get();
    ases_[ptr->aid()] = std::move(as);
    return *ptr;
  }

  /// Peers two ASes with the given one-way link latency.
  void link(core::Aid a, core::Aid b, net::TimeUs one_way_us = 5000) {
    topo_.add_link(a, b, one_way_us);
  }

  AutonomousSystem& as(core::Aid aid) { return *ases_.at(aid); }

  /// Drains all pending events (bootstrap chatter, handshakes, data).
  std::size_t run() { return loop_.run(); }

  net::EventLoop& loop() { return loop_; }
  net::Topology& topology() { return topo_; }
  net::InterAsNetwork& network() { return network_; }
  core::AsDirectory& directory() { return directory_; }
  services::DnsZone& zone() { return zone_; }

 private:
  std::uint64_t seed_;
  net::EventLoop loop_;
  net::Topology topo_;
  net::InterAsNetwork network_;
  core::AsDirectory directory_;
  services::DnsZone zone_;
  std::unordered_map<core::Aid, std::unique_ptr<AutonomousSystem>> ases_;
};

// ---- Synchronous conveniences for tests/examples -----------------------------

/// Requests one EphID and pumps the loop until the certificate arrives.
inline Result<const host::OwnedEphId*> acquire_ephid(
    host::Host& h, net::EventLoop& loop,
    core::EphIdLifetime lifetime = core::EphIdLifetime::short_term,
    std::uint8_t flags = 0) {
  std::optional<Result<const host::OwnedEphId*>> out;
  h.request_ephid(lifetime, flags,
                  [&out](Result<const host::OwnedEphId*> r) { out = std::move(r); });
  loop.run();
  if (!out) return Result<const host::OwnedEphId*>(Errc::internal, "no reply");
  return std::move(*out);
}

/// Pre-provisions `n` data-plane EphIDs into the host's pool.
inline Result<void> provision_ephids(
    host::Host& h, net::EventLoop& loop, std::size_t n,
    core::EphIdLifetime lifetime = core::EphIdLifetime::short_term,
    std::uint8_t flags = 0) {
  for (std::size_t i = 0; i < n; ++i) {
    auto r = acquire_ephid(h, loop, lifetime, flags);
    if (!r) return Result<void>(r.error());
  }
  return Result<void>::success();
}

}  // namespace apna

#include "apna/autonomous_system.h"

namespace apna {

AutonomousSystem::AutonomousSystem(Config cfg, net::EventLoop& loop,
                                   net::Topology& topo,
                                   net::InterAsNetwork& network,
                                   core::AsDirectory& directory,
                                   services::DnsZone& zone)
    : cfg_(std::move(cfg)),
      loop_(loop),
      topo_(topo),
      network_(network),
      directory_(directory),
      rng_(cfg_.rng_seed != 0 ? cfg_.rng_seed
                              : 0x5eed0000ULL + cfg_.aid) {
  state_ = std::make_unique<core::AsState>(
      cfg_.aid, core::AsSecrets::generate(rng_));
  switch_ = std::make_unique<net::IntraSwitch>(loop_,
                                               cfg_.intra_hop_latency_us);
  rs_ = std::make_unique<services::RegistryService>(*state_, subs_, loop_,
                                                    rng_, cfg_.rs);

  // Service identities. The AA comes first so its EphID can be embedded in
  // every certificate (§IV-C).
  const core::ExpTime service_exp =
      loop_.now_seconds() + cfg_.lifetimes.long_s;
  auto aa_ident = services::make_service_identity(
      *state_, rs_->allocate_hid(), service_exp, 0, nullptr, rng_);
  const core::EphId aa_ephid = aa_ident.cert.ephid;
  auto ms_ident = services::make_service_identity(
      *state_, rs_->allocate_hid(), service_exp, 0, &aa_ephid, rng_);
  auto dns_ident = services::make_service_identity(
      *state_, rs_->allocate_hid(), service_exp, 0, &aa_ephid, rng_);
  auto br_ident = services::make_service_identity(
      *state_, rs_->allocate_hid(), service_exp, 0, &aa_ephid, rng_);

  rs_->set_service_info(ms_ident.cert, dns_ident.cert, aa_ephid);

  ms_ = std::make_unique<services::ManagementService>(
      *state_, loop_, rng_, std::move(ms_ident), cfg_.lifetimes);
  aa_ = std::make_unique<services::AccountabilityAgent>(
      *state_, directory_, loop_, std::move(aa_ident));
  resolver_ = std::make_unique<dns::Resolver>(zone, loop_, cfg_.dns);
  resolver_->set_accountability(aa_.get());
  // The AA consumes the resolver's trie-backed policy through its hook, so
  // per-domain shutoff rules ride the Fig-5 revocation path.
  aa_->set_domain_policy(&resolver_->policy());
  dns_ = std::make_unique<dns::DnsService>(
      *state_, directory_, loop_, rng_, std::move(dns_ident), *resolver_);

  router::BorderRouter::Callbacks br_cb;
  br_cb.send_external = [this](wire::PacketBuf pkt) -> Result<void> {
    auto nh = topo_.next_hop(cfg_.aid, pkt.view().dst_aid());
    if (!nh) return Result<void>(nh.error());
    return network_.send(cfg_.aid, *nh, std::move(pkt));
  };
  br_cb.deliver_internal = [this](core::Hid hid,
                                  wire::PacketBuf pkt) -> Result<void> {
    return switch_->deliver(hid, std::move(pkt));
  };
  br_cb.now = [this] { return loop_.now_seconds(); };
  br_ = std::make_unique<router::BorderRouter>(*state_, std::move(br_cb),
                                               cfg_.br);
  router::RouterIdentity rid;
  rid.ephid = br_ident.cert.ephid;
  rid.aid = cfg_.aid;
  rid.mac_key = br_ident.keys.mac;
  br_->set_identity(rid);

  network_.register_border_router(cfg_.aid, [this](wire::PacketBuf pkt) {
    br_->on_ingress(std::move(pkt));
  });
  topo_.add_as(cfg_.aid);

  // The control-plane fabric: one dispatcher routes every inbound control
  // packet to the service owning its destination EphID, and each service's
  // reply is routed back through the AS fabric like any host's packet.
  dispatcher_ = std::make_unique<services::ServiceDispatcher>(
      [this](wire::PacketBuf reply) { route_from_inside(std::move(reply)); });
  dispatcher_->add(*ms_);
  dispatcher_->add(*aa_);
  dispatcher_->add(*dns_);
  for (services::ControlService* svc :
       {static_cast<services::ControlService*>(ms_.get()),
        static_cast<services::ControlService*>(aa_.get()),
        static_cast<services::ControlService*>(dns_.get())}) {
    switch_->attach(svc->service_hid(), [this](wire::PacketBuf pkt) {
      dispatcher_->dispatch(std::move(pkt));
    });
  }

  // Publish the AS's public parameters (RPKI stand-in).
  core::AsPublicInfo info;
  info.aid = cfg_.aid;
  info.sign_pub = state_->secrets.sign.pub;
  info.dh_pub = state_->secrets.dh.pub;
  info.aa_ephid = aa_ephid;
  directory_.register_as(info);
}

void AutonomousSystem::route_from_inside(wire::PacketBuf pkt) {
  if (pkt.view().dst_aid() == cfg_.aid) {
    // Intra-domain: destination checks + delivery by HID (the BR ingress
    // branch implements exactly the Fig 4 top pipeline).
    br_->on_ingress(std::move(pkt));
  } else {
    br_->on_outgoing(std::move(pkt));
  }
}

host::Host& AutonomousSystem::add_host(const std::string& name,
                                       host::Granularity granularity,
                                       crypto::AeadSuite suite) {
  const std::uint32_t subscriber = next_subscriber_++;
  const Bytes credential = rng_.bytes(16);
  subs_.add_subscriber(subscriber, credential);

  host::Host::Config cfg;
  cfg.name = name;
  cfg.subscriber_id = subscriber;
  cfg.credential = credential;
  cfg.granularity = granularity;
  cfg.suite = suite;

  auto h = std::make_unique<host::Host>(std::move(cfg), directory_, loop_);
  host::Host* ptr = h.get();

  // Uplink: first intra-AS hop, then the fabric routing decision. The
  // sealed buffer moves through the scheduled event — no copy per hop.
  ptr->set_uplink([this](wire::PacketBuf pkt) {
    loop_.schedule_in(cfg_.intra_hop_latency_us,
                      [this, pkt = std::move(pkt)]() mutable {
                        route_from_inside(std::move(pkt));
                      });
  });

  const auto boot = ptr->bootstrap(
      [this](const core::BootstrapRequest& req) { return rs_->bootstrap(req); });
  (void)boot;  // surfaced via host.bootstrapped()

  if (ptr->bootstrapped()) {
    switch_->attach(ptr->hid(), [ptr](wire::PacketBuf pkt) {
      ptr->on_packet(std::move(pkt));
    });
  }
  hosts_.push_back(std::move(h));
  return *ptr;
}

AutonomousSystem::Attachment AutonomousSystem::make_attachment() {
  Attachment a;
  a.bootstrap = [this](const core::BootstrapRequest& req) {
    return rs_->bootstrap(req);
  };
  a.uplink = [this](wire::PacketBuf pkt) {
    loop_.schedule_in(cfg_.intra_hop_latency_us,
                      [this, pkt = std::move(pkt)]() mutable {
                        route_from_inside(std::move(pkt));
                      });
  };
  return a;
}

void AutonomousSystem::attach_port(core::Hid hid, net::PacketHandler handler) {
  switch_->attach(hid, std::move(handler));
}

void AutonomousSystem::set_persist_sink(persist::Sink* sink) {
  rs_->set_persist_sink(sink);
  ms_->set_persist_sink(sink);
  aa_->set_persist_sink(sink);
  resolver_->set_persist_sink(sink);
  resolver_->zone().set_persist_sink(sink);
}

}  // namespace apna

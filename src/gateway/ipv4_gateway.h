// APNA gateway for unmodified IPv4 hosts (§VII-D).
//
// "An APNA gateway has two roles: 1) as an APNA host, it runs the protocols
// described in Section IV; and 2) as a packet translator, it converts
// between native IPv4 and APNA packets."
//
// Client side: the gateway intercepts the legacy host's DNS resolution
// ("the gateway ... learns the IPv4 address and the AID:EphID of the server
// by inspecting the DNS reply"), assigns a synthetic IPv4 address per name
// (the paper's trick for servers whose records carry no IPv4), and maps
// each legacy 5-tuple flow to its own APNA session with a fresh source
// EphID ("the gateway uses a different EphID for each new IPv4 flow").
//
// Server side: an administrator registers (receive-only EphID, legacy IP)
// so inbound APNA sessions are translated to IPv4 toward the legacy
// server, each APNA peer appearing as a unique *virtual endpoint* IP.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "apna/autonomous_system.h"
#include "host/host.h"
#include "wire/ipv4.h"

namespace apna::gw {

class Ipv4Gateway {
 public:
  struct Config {
    std::string name = "gw";
    /// Synthetic address pool for resolved names (paper: "generates and
    /// appends a random IPv4 address into the DNS reply").
    std::uint32_t fake_ip_base = 0x0A630000;     // 10.99.0.0/16
    /// Virtual-endpoint pool for inbound APNA peers (§VII-D: "an IPv4
    /// address (e.g., randomly drawn from a private address space)").
    std::uint32_t virtual_ip_base = 0x0A640000;  // 10.100.0.0/16
  };

  struct Stats {
    std::uint64_t flows_created = 0;
    std::uint64_t out_translated = 0;   // IPv4 → APNA
    std::uint64_t in_translated = 0;    // APNA → IPv4
    std::uint64_t no_mapping_drops = 0;
  };

  /// Delivery callback toward a legacy host (identified by its IPv4 addr).
  using LegacyDeliver = std::function<void(const wire::Ipv4Packet&)>;

  Ipv4Gateway(Config cfg, AutonomousSystem& parent);

  /// Attaches a legacy host's delivery hook.
  void attach_legacy_host(std::uint32_t ip, LegacyDeliver deliver) {
    legacy_ports_[ip] = std::move(deliver);
  }

  /// DNS interception: resolves `name` over APNA and hands back a synthetic
  /// IPv4 the legacy host can use as a destination address.
  void legacy_resolve(const std::string& name,
                      std::function<void(Result<std::uint32_t>)> cb);

  /// The legacy host's packets enter here (its default route).
  void on_legacy_packet(const wire::Ipv4Packet& pkt);

  /// Server side: binds an inbound APNA service EphID to a legacy server.
  /// The gateway must own `receive_only_cert`'s EphID (issued via gw_host).
  void register_server(std::uint32_t legacy_server_ip);

  host::Host& gw_host() { return host_; }
  const Stats& stats() const { return stats_; }

 private:
  void on_session_data(std::uint64_t session_id, ByteSpan data);

  Config cfg_;
  AutonomousSystem& parent_;
  host::Host& host_;  // the gateway's APNA host side (owned by parent AS)

  // name → synthetic IP, synthetic IP → DNS record.
  std::unordered_map<std::string, std::uint32_t> name_to_ip_;
  std::unordered_map<std::uint32_t, core::DnsRecord> ip_to_record_;
  std::uint32_t next_fake_ip_;
  std::uint32_t next_virtual_ip_;

  // Outbound flow table: legacy 5-tuple ↔ APNA session.
  std::unordered_map<wire::FlowKey5, std::uint64_t, wire::FlowKey5Hash>
      flow_to_session_;
  struct FlowState {
    wire::FlowKey5 key;       // legacy 5-tuple (as seen from the host)
    bool inbound = false;     // true when created by a remote APNA peer
  };
  std::unordered_map<std::uint64_t, FlowState> session_to_flow_;

  // Inbound: APNA peer → virtual endpoint IP, and back.
  std::unordered_map<std::uint32_t, std::uint64_t> virtual_ip_to_session_;
  std::uint32_t server_ip_ = 0;  // registered legacy server (0 = none)

  std::unordered_map<std::uint32_t, LegacyDeliver> legacy_ports_;
  Stats stats_;
};

}  // namespace apna::gw

// Bridge-mode Access Point (§VII-B).
//
// "the AP serves as a transparent bridge that interconnects users behind
// the AP to the AS. The AS requires all users to be directly authenticated
// to itself." Hosts behind the bridge are first-class customers: they hold
// their own HIDs, kHA keys and EphIDs; the bridge only relays frames (and
// counts them).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apna/autonomous_system.h"
#include "host/host.h"

namespace apna::gw {

class BridgeAccessPoint {
 public:
  struct Stats {
    std::uint64_t relayed_up = 0;
    std::uint64_t relayed_down = 0;
  };

  BridgeAccessPoint(std::string name, AutonomousSystem& parent,
                    net::TimeUs bridge_latency_us = 10)
      : name_(std::move(name)),
        parent_(parent),
        latency_(bridge_latency_us) {}

  /// Adds a host behind the bridge: it authenticates DIRECTLY to the AS
  /// (the defining property of bridge mode), with the bridge in the path.
  host::Host& add_host(const std::string& host_name,
                       host::Granularity granularity =
                           host::Granularity::per_flow) {
    const auto account = parent_.enroll_subscriber();
    host::Host::Config hc;
    hc.name = name_ + "/" + host_name;
    hc.subscriber_id = account.subscriber_id;
    hc.credential = account.credential;
    hc.granularity = granularity;
    auto h = std::make_unique<host::Host>(std::move(hc), parent_.directory_ref(),
                                          parent_.loop());
    host::Host* ptr = h.get();

    auto attachment = parent_.make_attachment();
    // Uplink via the bridge: one extra latency hop, one counter.
    ptr->set_uplink([this, up = attachment.uplink](wire::PacketBuf pkt) {
      ++stats_.relayed_up;
      parent_.loop().schedule_in(latency_,
                                 [up, pkt = std::move(pkt)]() mutable {
                                   up(std::move(pkt));
                                 });
    });
    (void)ptr->bootstrap(attachment.bootstrap);
    if (ptr->bootstrapped()) {
      parent_.attach_port(ptr->hid(), [this, ptr](wire::PacketBuf pkt) {
        ++stats_.relayed_down;
        parent_.loop().schedule_in(latency_,
                                   [ptr, pkt = std::move(pkt)]() mutable {
                                     ptr->on_packet(std::move(pkt));
                                   });
      });
    }
    hosts_.push_back(std::move(h));
    return *ptr;
  }

  const Stats& stats() const { return stats_; }

 private:
  std::string name_;
  AutonomousSystem& parent_;
  net::TimeUs latency_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  Stats stats_;
};

}  // namespace apna::gw

#include "gateway/nat_ap.h"

#include "core/packet_auth.h"
#include "wire/msg_codec.h"

namespace apna::gw {

NatAccessPoint::NatAccessPoint(Config cfg, AutonomousSystem& parent,
                               core::AsDirectory& directory)
    : cfg_(std::move(cfg)),
      parent_(parent),
      directory_(directory),
      rng_(cfg_.rng_seed != 0 ? cfg_.rng_seed : 0xA9000000ULL + cfg_.private_aid),
      loop_(parent.loop()) {
  // --- Host side: the AP is an ordinary customer of the parent AS. ----------
  const auto account = parent_.enroll_subscriber();
  host::Host::Config hc;
  hc.name = cfg_.name;
  hc.subscriber_id = account.subscriber_id;
  hc.credential = account.credential;
  ap_host_ = std::make_unique<host::Host>(std::move(hc), directory_, loop_);

  auto attachment = parent_.make_attachment();
  ap_host_->set_uplink(attachment.uplink);
  const auto boot = ap_host_->bootstrap(attachment.bootstrap);
  (void)boot;
  // Intercept everything delivered to the AP's HID: inner traffic is
  // dispatched by EphID_info, the rest goes to the AP's own stack.
  parent_.attach_port(ap_host_->hid(), [this](wire::PacketBuf pkt) {
    on_downlink(std::move(pkt));
  });

  // --- Inner realm. -----------------------------------------------------------
  inner_as_ = std::make_unique<core::AsState>(
      cfg_.private_aid, core::AsSecrets::generate(rng_));
  inner_rs_ = std::make_unique<services::RegistryService>(
      *inner_as_, inner_subs_, loop_, rng_);

  inner_ms_ = services::make_service_identity(
      *inner_as_, inner_rs_->allocate_hid(),
      loop_.now_seconds() + 24 * 3600, 0, nullptr, rng_);
  // Inner bootstrap hands out: the AP's inner MS, the PARENT's DNS (data
  // path goes through the AP like any other traffic), and the parent's AA.
  core::EphId parent_aa;
  if (const auto info = directory_.lookup(parent_.aid()))
    parent_aa = info->aa_ephid;
  inner_rs_->set_service_info(inner_ms_.cert, ap_host_->dns_cert(),
                              parent_aa);

  // Register the private realm so inner hosts can validate their bootstrap
  // and the inner MS certificate.
  core::AsPublicInfo inner_info;
  inner_info.aid = cfg_.private_aid;
  inner_info.sign_pub = inner_as_->secrets.sign.pub;
  inner_info.dh_pub = inner_as_->secrets.dh.pub;
  inner_info.aa_ephid = parent_aa;
  directory_.register_as(inner_info);
}

host::Host& NatAccessPoint::add_inner_host(const std::string& name,
                                           host::Granularity granularity) {
  const std::uint32_t subscriber = next_inner_subscriber_++;
  const Bytes credential = rng_.bytes(16);
  inner_subs_.add_subscriber(subscriber, credential);

  host::Host::Config hc;
  hc.name = name;
  hc.subscriber_id = subscriber;
  hc.credential = credential;
  hc.granularity = granularity;
  auto h = std::make_unique<host::Host>(std::move(hc), directory_, loop_);
  host::Host* ptr = h.get();

  ptr->set_uplink([this](wire::PacketBuf pkt) {
    loop_.schedule_in(cfg_.inner_hop_latency_us,
                      [this, pkt = std::move(pkt)]() mutable {
                        on_inner_uplink(std::move(pkt));
                      });
  });
  const auto boot = ptr->bootstrap([this](const core::BootstrapRequest& req) {
    return inner_rs_->bootstrap(req);
  });
  (void)boot;
  if (ptr->bootstrapped()) inner_ports_[ptr->hid()] = ptr;
  inner_hosts_.push_back(std::move(h));
  return *ptr;
}

Result<core::Hid> NatAccessPoint::identify(const core::EphId& ephid) const {
  auto it = ephid_info_.find(ephid);
  if (it == ephid_info_.end())
    return Result<core::Hid>(Errc::not_found, "EphID not issued via this AP");
  return it->second;
}

void NatAccessPoint::deliver_to_inner(core::Hid inner_hid,
                                      wire::PacketBuf pkt) {
  auto it = inner_ports_.find(inner_hid);
  if (it == inner_ports_.end()) return;
  host::Host* h = it->second;
  loop_.schedule_in(cfg_.inner_hop_latency_us,
                    [h, pkt = std::move(pkt)]() mutable {
                      h->on_packet(std::move(pkt));
                    });
}

NatAccessPoint::InnerRoute NatAccessPoint::route_inner(
    const wire::PacketView& pkt) {
  // Internal destination? (inner control EphIDs decode under the AP's kA.)
  core::EphId dst;
  dst.bytes = pkt.dst_ephid();
  if (auto plain = inner_as_->codec.open(dst); plain.ok()) {
    if (plain->hid == inner_ms_.hid)
      return InnerRoute{InnerRoute::Kind::ms_request, 0};
    // Inner-to-inner traffic stays behind the AP.
    if (inner_ports_.contains(plain->hid))
      return InnerRoute{InnerRoute::Kind::deliver, plain->hid};
  }
  // EphID_info lookup also covers inner→inner via real-AS EphIDs.
  if (auto it = ephid_info_.find(dst); it != ephid_info_.end())
    return InnerRoute{InnerRoute::Kind::deliver, it->second};

  // Egress: the source EphID must have been issued via this AP.
  core::EphId src;
  src.bytes = pkt.src_ephid();
  auto owner = ephid_info_.find(src);
  if (owner == ephid_info_.end())
    return InnerRoute{InnerRoute::Kind::drop, 0};
  return InnerRoute{InnerRoute::Kind::egress, owner->second};
}

void NatAccessPoint::forward_inner_egress(wire::PacketBuf pkt) {
  // NAT step: present the packet as the AP's own traffic — real AID
  // (rewritten in place at its fixed offset) and the AP's kHA MAC
  // (re-stamped in place by forward_as_own). Same buffer end to end.
  pkt.set_src_aid(parent_.aid());
  ++stats_.inner_out;
  ap_host_->forward_as_own(std::move(pkt));
}

void NatAccessPoint::on_inner_uplink(wire::PacketBuf pkt) {
  const InnerRoute route = route_inner(pkt.view());
  switch (route.kind) {
    case InnerRoute::Kind::ms_request:
      handle_inner_ms_request(pkt.view());
      return;
    case InnerRoute::Kind::deliver:
      ++stats_.intra_ap;
      deliver_to_inner(route.hid, std::move(pkt));
      return;
    case InnerRoute::Kind::drop:
      ++stats_.drop_unknown_ephid;
      return;
    case InnerRoute::Kind::egress:
      break;
  }
  // The packet must carry a valid MAC under the INNER host's key ("in
  // addition to verifying the MAC in the packets using the shared keys
  // with its hosts").
  const auto inner_rec = inner_as_->host_db.find(route.hid);
  if (!inner_rec || !core::verify_packet_mac(*inner_rec->cmac, pkt.view())) {
    ++stats_.drop_bad_inner_mac;
    return;
  }
  forward_inner_egress(std::move(pkt));
}

void NatAccessPoint::inject_inner_burst(
    std::span<const wire::PacketView> burst) {
  // Route first: inner-destined traffic is consumed here; what remains is
  // the egress set whose inner MACs can be verified as one batch, in place
  // over the callers' wire images.
  std::vector<const wire::PacketView*> egress;
  std::vector<std::optional<core::HostRecord>> recs;  // keepalive for cmac
  egress.reserve(burst.size());
  recs.reserve(burst.size());
  for (const wire::PacketView& pkt : burst) {
    const InnerRoute route = route_inner(pkt);
    switch (route.kind) {
      case InnerRoute::Kind::ms_request:
        handle_inner_ms_request(pkt);
        continue;
      case InnerRoute::Kind::deliver:
        ++stats_.intra_ap;
        // The burst stays caller-owned: inner delivery extends the
        // packet's lifetime, so it is one explicit pooled copy.
        deliver_to_inner(route.hid, wire::PacketBuf::copy_of(pkt));
        continue;
      case InnerRoute::Kind::drop:
        ++stats_.drop_unknown_ephid;
        continue;
      case InnerRoute::Kind::egress:
        egress.push_back(&pkt);
        recs.push_back(inner_as_->host_db.find(route.hid));
        continue;
    }
  }

  std::vector<core::PacketMacJob> jobs(egress.size());
  for (std::size_t i = 0; i < egress.size(); ++i)
    jobs[i] = core::PacketMacJob{egress[i],
                                 recs[i] ? recs[i]->cmac.get() : nullptr};
  std::vector<std::uint8_t> mac_ok(egress.size());
  core::verify_packet_macs(jobs, mac_ok);

  // NAT the survivors (one pooled copy each — the caller keeps the burst)
  // and re-MAC them under the AP's kHA as one in-place batch.
  std::vector<wire::PacketBuf> out;
  out.reserve(egress.size());
  for (std::size_t i = 0; i < egress.size(); ++i) {
    if (!mac_ok[i]) {
      ++stats_.drop_bad_inner_mac;
      continue;
    }
    out.push_back(wire::PacketBuf::copy_of(*egress[i]));
    out.back().set_src_aid(parent_.aid());
  }
  stats_.inner_out += out.size();
  ap_host_->forward_as_own_burst(out);
}

void NatAccessPoint::on_downlink(wire::PacketBuf pkt) {
  core::EphId dst;
  dst.bytes = pkt.view().dst_ephid();
  if (auto it = ephid_info_.find(dst); it != ephid_info_.end()) {
    ++stats_.inner_in;
    deliver_to_inner(it->second, std::move(pkt));
    return;
  }
  // Not an inner EphID: the AP's own traffic (EphID replies, DNS, ...).
  ap_host_->on_packet(std::move(pkt));
}

void NatAccessPoint::handle_inner_ms_request(const wire::PacketView& pkt) {
  // Validate exactly like a real MS (Fig 3), against the INNER realm.
  core::EphId ctrl;
  ctrl.bytes = pkt.src_ephid();
  auto plain = inner_as_->codec.open(ctrl);
  if (!plain || plain->exp_time < loop_.now_seconds()) return;
  const auto inner_rec = inner_as_->host_db.find(plain->hid);
  if (!inner_rec) return;

  auto payload = core::open_control(inner_rec->keys, /*from_host=*/true,
                                    pkt.payload());
  if (!payload) return;
  auto request = core::EphIdRequest::parse(*payload);
  if (!request) return;

  // Proxy upstream with the INNER host's public key (§VII-B difference 1),
  // then record the binding and answer the inner host. Only the reply
  // address survives the async hop — no packet copy is captured.
  const core::Hid inner_hid = plain->hid;
  const core::Aid reply_aid = pkt.src_aid();
  const wire::EphIdBytes reply_ephid = pkt.src_ephid();
  ap_host_->request_ephid_for(
      request->ephid_pub, request->pop_sig, request->lifetime, request->flags,
      [this, inner_hid, reply_aid, reply_ephid,
       inner_keys = inner_rec->keys](Result<core::EphIdCertificate> cert) {
        if (!cert.ok()) return;
        // Difference 2: the AP tracks EphID → inner host as a list, since
        // the EphID decrypts to the AP's HID, not the inner host's.
        ephid_info_[cert->ephid] = inner_hid;
        ++stats_.proxied_ephids;

        core::EphIdResponse resp;
        resp.cert = cert.take();
        wire::MsgWriter plain(192);
        resp.encode(plain);
        wire::PacketWriter pw(cfg_.private_aid, inner_ms_.cert.ephid.bytes,
                              reply_aid, reply_ephid,
                              wire::NextProto::control);
        core::seal_control_into(pw, inner_keys, inner_ms_nonce_++,
                                /*from_host=*/false, plain.span());
        wire::PacketBuf out = pw.finish();
        core::stamp_packet_mac(*inner_ms_.cmac, out);
        deliver_to_inner(inner_hid, std::move(out));
      });
}

}  // namespace apna::gw

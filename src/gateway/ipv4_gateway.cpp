#include "gateway/ipv4_gateway.h"

namespace apna::gw {

Ipv4Gateway::Ipv4Gateway(Config cfg, AutonomousSystem& parent)
    : cfg_(std::move(cfg)),
      parent_(parent),
      host_(parent.add_host(cfg_.name)),
      next_fake_ip_(cfg_.fake_ip_base + 1),
      next_virtual_ip_(cfg_.virtual_ip_base + 1) {
  host_.set_data_handler([this](std::uint64_t sid, ByteSpan data) {
    on_session_data(sid, data);
  });
}

void Ipv4Gateway::legacy_resolve(
    const std::string& name, std::function<void(Result<std::uint32_t>)> cb) {
  if (auto it = name_to_ip_.find(name); it != name_to_ip_.end()) {
    cb(it->second);
    return;
  }
  host_.resolve(name, [this, name, cb = std::move(cb)](
                          Result<core::DnsRecord> rec) {
    if (!rec.ok()) {
      cb(Result<std::uint32_t>(rec.error()));
      return;
    }
    // Synthesize an IPv4 for the record (even when it carries none — the
    // paper's privacy-preserving variant removes the real address).
    const std::uint32_t ip = next_fake_ip_++;
    name_to_ip_[name] = ip;
    ip_to_record_[ip] = rec.take();
    cb(ip);
  });
}

void Ipv4Gateway::on_legacy_packet(const wire::Ipv4Packet& pkt) {
  // Replies from a registered legacy server to a virtual endpoint.
  if (auto v = virtual_ip_to_session_.find(pkt.hdr.dst);
      v != virtual_ip_to_session_.end()) {
    if (host_.send_data(v->second, pkt.payload).ok())
      ++stats_.out_translated;
    return;
  }

  wire::FlowKey5 key{pkt.hdr.src, pkt.hdr.dst, pkt.src_port, pkt.dst_port,
                     static_cast<std::uint8_t>(pkt.hdr.proto)};

  if (auto it = flow_to_session_.find(key); it != flow_to_session_.end()) {
    // Existing flow: translate and forward the payload over its session.
    if (host_.send_data(it->second, pkt.payload).ok())
      ++stats_.out_translated;
    return;
  }

  // New flow: we must know the destination's AID:EphID — only flows toward
  // resolved (or registered) destinations can be translated ("the gateway
  // cannot determine the destination AID:EphID solely based on the 5-tuple").
  auto rec = ip_to_record_.find(pkt.hdr.dst);
  if (rec == ip_to_record_.end()) {
    ++stats_.no_mapping_drops;
    return;
  }

  host::Host::ConnectOptions opts;
  opts.app = "gw";
  opts.flow = std::to_string(wire::FlowKey5Hash{}(key));
  auto sid = host_.connect(rec->second.cert, std::move(opts),
                           [](Result<std::uint64_t>) {});
  if (!sid.ok()) {
    ++stats_.no_mapping_drops;
    return;
  }
  flow_to_session_[key] = *sid;
  session_to_flow_[*sid] = FlowState{key, /*inbound=*/false};
  ++stats_.flows_created;
  if (host_.send_data(*sid, pkt.payload).ok()) ++stats_.out_translated;
}

void Ipv4Gateway::register_server(std::uint32_t legacy_server_ip) {
  server_ip_ = legacy_server_ip;
}

void Ipv4Gateway::on_session_data(std::uint64_t sid, ByteSpan data) {
  auto flow = session_to_flow_.find(sid);
  if (flow == session_to_flow_.end()) {
    // First data on an inbound session: translate toward the registered
    // legacy server via a fresh virtual endpoint (§VII-D "the gateway
    // assigns unique virtual end-point for each APNA flow").
    if (server_ip_ == 0) {
      ++stats_.no_mapping_drops;
      return;
    }
    const std::uint32_t vip = next_virtual_ip_++;
    wire::FlowKey5 key{server_ip_, vip, 80, 40000,
                       static_cast<std::uint8_t>(wire::IpProto::tcp)};
    session_to_flow_[sid] = FlowState{key, /*inbound=*/true};
    virtual_ip_to_session_[vip] = sid;
    ++stats_.flows_created;
    flow = session_to_flow_.find(sid);
  }

  const FlowState& st = flow->second;
  wire::Ipv4Packet out;
  if (st.inbound) {
    // Toward the legacy server: source = the peer's virtual endpoint.
    out.hdr.src = st.key.dst_ip;   // the virtual endpoint IP
    out.hdr.dst = st.key.src_ip;   // the legacy server
    out.src_port = st.key.dst_port;
    out.dst_port = st.key.src_port;
  } else {
    // Back toward the legacy client: source = the synthetic resolved IP.
    out.hdr.src = st.key.dst_ip;
    out.hdr.dst = st.key.src_ip;
    out.src_port = st.key.dst_port;
    out.dst_port = st.key.src_port;
  }
  out.hdr.proto = static_cast<wire::IpProto>(st.key.proto);
  out.payload.assign(data.begin(), data.end());

  auto port = legacy_ports_.find(out.hdr.dst);
  if (port == legacy_ports_.end()) {
    ++stats_.no_mapping_drops;
    return;
  }
  ++stats_.in_translated;
  port->second(out);
}

}  // namespace apna::gw

// NAT-mode Access Point (§VII-B).
//
// "the AP creates a small domain of its own while acting as a host to the
// AS network. That is, the AP performs the protocol described in Section IV
// as a host to the AS while playing the roles of a RS, an MS, a router, and
// an accountability agent on behalf of its clients."
//
// Concretely:
//  * as RS     — bootstraps inner hosts into the AP's private realm
//                (its own kA, HIDs and control EphIDs);
//  * as MS     — proxies EphID requests to the real AS's MS using the
//                key supplied by the inner host; the resulting certificates
//                are issued and signed by the REAL AS, so inner hosts
//                interoperate with the whole Internet unchanged;
//  * as router — keeps EphID_info (EphID → inner host), verifies inner
//                packet MACs and re-MACs outgoing traffic under its own
//                kHA ("the AP replaces the MAC using its shared key with
//                the AS before forwarding");
//  * as AA     — identify() maps a misbehaving EphID back to the inner
//                host ("the AS holds the AP accountable for misbehaving
//                EphIDs. Then, the AP determines the host").
//
// §VIII-E (APNA-as-a-Service) reuses this class: a downstream AS is exactly
// a connection-sharing device from the upstream ISP's point of view.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "apna/autonomous_system.h"
#include "core/as_state.h"
#include "host/host.h"
#include "services/registry_service.h"
#include "services/service_identity.h"

namespace apna::gw {

class NatAccessPoint {
 public:
  struct Config {
    std::string name = "ap";
    /// The AP's private realm identifier (like an RFC1918 network); it is
    /// registered in the directory so inner bootstrap validates, but never
    /// appears in data-plane packets (the AP rewrites to the real AID).
    core::Aid private_aid = 0xFF000001;
    std::uint64_t rng_seed = 0;
    net::TimeUs inner_hop_latency_us = 20;
  };

  struct Stats {
    std::uint64_t inner_out = 0;        // inner → Internet packets
    std::uint64_t inner_in = 0;         // Internet → inner packets
    std::uint64_t proxied_ephids = 0;   // certificates obtained upstream
    std::uint64_t drop_bad_inner_mac = 0;
    std::uint64_t drop_unknown_ephid = 0;
    std::uint64_t intra_ap = 0;         // inner ↔ inner, never left the AP
  };

  NatAccessPoint(Config cfg, AutonomousSystem& parent,
                 core::AsDirectory& directory);

  /// Bootstraps an inner host into the AP's realm. The host object behaves
  /// exactly like a directly attached one (same class, same API).
  host::Host& add_inner_host(
      const std::string& name,
      host::Granularity granularity = host::Granularity::per_flow);

  /// AA role: which inner host owns this (real-AS-issued) EphID?
  Result<core::Hid> identify(const core::EphId& ephid) const;

  /// Raw injection on the inner wire — what any device on the AP's LAN
  /// segment can transmit (used by spoofing tests; the AP must drop
  /// packets that fail the inner MAC check).
  void inject_inner(wire::PacketBuf pkt) { on_inner_uplink(std::move(pkt)); }

  /// Burst ingestion on the inner wire (views; the caller owns the
  /// buffers): egress candidates have their inner MACs verified in place
  /// through the batched verifier (core::verify_packet_macs); survivors
  /// are NAT-rewritten (src AID, fixed offset) and re-MAC'd under the AP's
  /// kHA through the batched in-place stamping path
  /// (host::Host::forward_as_own_burst). Per-packet verdicts and counters
  /// are identical to calling inject_inner once per packet.
  void inject_inner_burst(std::span<const wire::PacketView> burst);

  /// The AP's own host-side identity at the parent AS.
  host::Host& ap_host() { return *ap_host_; }
  core::Aid parent_aid() const { return parent_.aid(); }
  const Stats& stats() const { return stats_; }
  std::size_t ephid_info_size() const { return ephid_info_.size(); }

 private:
  // The four roles.
  void on_inner_uplink(wire::PacketBuf pkt);              // router (egress)
  void on_downlink(wire::PacketBuf pkt);                  // router (ingress)
  void handle_inner_ms_request(const wire::PacketView& pkt);  // MS proxy
  void deliver_to_inner(core::Hid inner_hid, wire::PacketBuf pkt);

  /// Pure routing decision for one inner-wire packet (no side effects on
  /// the packet): where does it go, and which inner host owns it?
  struct InnerRoute {
    enum class Kind {
      ms_request,  // addressed to the AP's inner MS
      deliver,     // inner→inner: deliver to `hid` behind the AP
      egress,      // leaves the AP; `hid` owns the source EphID
      drop,        // unknown source EphID
    } kind = Kind::drop;
    core::Hid hid = 0;
  };
  InnerRoute route_inner(const wire::PacketView& pkt);
  /// NAT tail after a verified inner MAC: rewrite the source AID in place
  /// and re-MAC via the AP's host identity — same buffer throughout.
  void forward_inner_egress(wire::PacketBuf pkt);

  Config cfg_;
  AutonomousSystem& parent_;
  core::AsDirectory& directory_;
  crypto::ChaChaRng rng_;
  net::EventLoop& loop_;

  // Host side: the AP as a customer of the parent AS.
  std::unique_ptr<host::Host> ap_host_;

  // Inner realm: private AsState + RS + inner "MS" endpoint.
  std::unique_ptr<core::AsState> inner_as_;
  services::SubscriberRegistry inner_subs_;
  std::unique_ptr<services::RegistryService> inner_rs_;
  services::ServiceIdentity inner_ms_;
  std::uint64_t inner_ms_nonce_ = 1;

  // EphID_info: real-AS EphID → inner host (§VII-B — "the AP keeps track of
  // the EphIDs that are assigned to the hosts as a list").
  std::unordered_map<core::EphId, core::Hid, core::EphIdHash> ephid_info_;

  // Inner hosts by inner HID.
  std::unordered_map<core::Hid, host::Host*> inner_ports_;
  std::vector<std::unique_ptr<host::Host>> inner_hosts_;
  std::uint32_t next_inner_subscriber_ = 1;

  Stats stats_;
};

}  // namespace apna::gw

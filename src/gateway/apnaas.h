// APNA-as-a-Service (§VIII-E).
//
// "An ISP can offer APNA's accountability and privacy protection not only
// to hosts in its network, but also to its downstream (e.g., customer)
// ASes. In this deployment, a downstream AS can be viewed as a
// connection-sharing device that provides APNA connections to its hosts."
//
// DownstreamAs wraps the NAT-mode machinery at AS granularity: the
// downstream operator runs the RS/MS-proxy/router/AA roles for its
// customers while the upstream ISP issues the actual EphIDs and acts as
// the accountability agent of record. The §VIII-E privacy benefit falls
// out automatically: the downstream's customers mix into the upstream
// ISP's (larger) anonymity set, since their packets carry the upstream
// AID and upstream-issued EphIDs.
#pragma once

#include "gateway/nat_ap.h"

namespace apna::gw {

class DownstreamAs {
 public:
  struct Config {
    std::string name = "downstream-as";
    /// Private identifier of the downstream domain.
    core::Aid downstream_aid = 0xFE000001;
    std::uint64_t rng_seed = 0;
  };

  /// `upstream` is the APNA-providing ISP; all of the downstream's egress
  /// must transit it (the §VIII-E deployment requirement — the ISP "needs
  /// to be able to verify all packets ... originating from the downstream
  /// ASes").
  DownstreamAs(Config cfg, AutonomousSystem& upstream,
               core::AsDirectory& directory)
      : ap_(NatAccessPoint::Config{cfg.name, cfg.downstream_aid,
                                   cfg.rng_seed, /*inner hop*/ 100},
            upstream, directory) {}

  /// A customer host of the downstream AS, served with upstream-issued
  /// EphIDs.
  host::Host& add_customer(const std::string& name,
                           host::Granularity granularity =
                               host::Granularity::per_flow) {
    return ap_.add_inner_host(name, granularity);
  }

  /// The downstream operator's accountability view.
  Result<core::Hid> identify(const core::EphId& ephid) const {
    return ap_.identify(ephid);
  }

  core::Aid upstream_aid() const { return ap_.parent_aid(); }
  const NatAccessPoint::Stats& stats() const { return ap_.stats(); }
  NatAccessPoint& access_point() { return ap_; }

 private:
  NatAccessPoint ap_;
};

}  // namespace apna::gw

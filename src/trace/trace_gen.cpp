#include "trace/trace_gen.h"

#include <cmath>
#include <numbers>

namespace apna::trace {

namespace {

/// splitmix64 — cheap per-arrival randomness inside the hot loop, seeded
/// from the trace seed so runs stay deterministic.
struct SplitMix {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
  /// Box-Muller standard normal.
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-12) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }
  /// Poisson via normal approximation (valid for the λ ≥ ~50 used here).
  std::uint32_t poisson(double lambda) {
    if (lambda <= 0) return 0;
    const double v = lambda + std::sqrt(lambda) * normal();
    return v <= 0 ? 0 : static_cast<std::uint32_t>(v + 0.5);
  }
};

}  // namespace

double TraceGenerator::rate_at(std::uint32_t t) const {
  const double floor = cfg_.night_floor_per_s / cfg_.scale;
  const double peak = cfg_.day_peak_per_s / cfg_.scale;
  // Sinusoid with its minimum at t = 0 (night) and maximum mid-day.
  const double phase =
      2.0 * std::numbers::pi * static_cast<double>(t) / cfg_.duration_s;
  const double s = 0.5 * (1.0 - std::cos(phase));  // 0 at night, 1 mid-day
  return floor + (peak - floor) * s;
}

std::vector<std::uint32_t> TraceGenerator::arrivals_per_second() const {
  SplitMix rng{cfg_.seed * 0x9e3779b97f4a7c15ULL + 1};
  std::vector<std::uint32_t> out(cfg_.duration_s);
  for (std::uint32_t t = 0; t < cfg_.duration_s; ++t)
    out[t] = rng.poisson(rate_at(t));
  return out;
}

TraceStats TraceGenerator::run() const {
  // Two independent streams: the arrival process (identical to
  // arrivals_per_second()) and per-flow details, so the aggregate counts
  // are consistent across the two entry points.
  SplitMix rng{cfg_.seed * 0x9e3779b97f4a7c15ULL + 1};
  SplitMix flow_rng{cfg_.seed * 0x9e3779b97f4a7c15ULL + 2};
  const std::uint32_t hosts =
      std::max<std::uint32_t>(1, cfg_.num_hosts / cfg_.scale);

  std::vector<bool> seen(hosts, false);
  std::uint64_t unique = 0;

  // Difference array for concurrency (one slot past the end for run-off).
  std::vector<std::int64_t> concurrency_delta(cfg_.duration_s + 1, 0);

  TraceStats stats;
  long double duration_sum = 0;
  std::uint64_t under_15min = 0;

  for (std::uint32_t t = 0; t < cfg_.duration_s; ++t) {
    const std::uint32_t arrivals = rng.poisson(rate_at(t));
    if (arrivals > stats.peak_arrivals_per_s) {
      stats.peak_arrivals_per_s = arrivals;
      stats.peak_arrival_second = t;
    }
    stats.total_entries += arrivals;

    for (std::uint32_t i = 0; i < arrivals; ++i) {
      const std::uint32_t host =
          static_cast<std::uint32_t>(flow_rng.next() % hosts);
      if (!seen[host]) {
        seen[host] = true;
        ++unique;
      }
      const double dur =
          std::exp(cfg_.duration_mu + cfg_.duration_sigma * flow_rng.normal());
      duration_sum += dur;
      if (dur < 900.0) ++under_15min;
      const std::uint32_t end =
          t + static_cast<std::uint32_t>(
                  std::min(dur, static_cast<double>(cfg_.duration_s)));
      concurrency_delta[t] += 1;
      concurrency_delta[std::min(end + 1, cfg_.duration_s)] -= 1;
    }
  }

  std::int64_t active = 0;
  for (std::uint32_t t = 0; t < cfg_.duration_s; ++t) {
    active += concurrency_delta[t];
    if (active > static_cast<std::int64_t>(stats.peak_concurrent))
      stats.peak_concurrent = static_cast<std::uint64_t>(active);
  }

  stats.unique_hosts = unique;
  if (stats.total_entries > 0) {
    stats.fraction_under_15min =
        static_cast<double>(under_15min) / stats.total_entries;
    stats.mean_duration_s =
        static_cast<double>(duration_sum / stats.total_entries);
  }
  return stats;
}

}  // namespace apna::trace

// Synthetic 24-hour flow trace (§V-A3 substitute).
//
// The paper sizes the MS experiment with a proprietary NREN trace: 104 M
// HTTP + 74 M HTTPS entries, 1,266,598 unique hosts, peak 3,888 new
// HTTP(S) sessions per second. This generator reproduces those shape
// parameters synthetically:
//   * session arrivals follow a diurnal sinusoid between a night floor and
//     a daily peak, sampled per second (Poisson);
//   * each arrival draws a source host uniformly from the host population;
//   * flow durations are log-normal, calibrated so ~98 % of flows last
//     under 15 minutes (the Brownlee/Claffy dragonfly observation the
//     paper cites for its EphID-lifetime discussion, §VIII-G1).
// Runs are fully deterministic per seed.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace apna::trace {

struct TraceConfig {
  std::uint64_t seed = 42;
  std::uint32_t duration_s = 24 * 3600;
  std::uint32_t num_hosts = 1'266'598;
  /// Diurnal arrival-rate envelope (new sessions per second).
  double night_floor_per_s = 232.0;
  double day_peak_per_s = 3'888.0;
  /// Log-normal duration parameters: ln D ~ N(mu, sigma^2).
  double duration_mu = 2.302585;  // median 10 s
  double duration_sigma = 2.19;   // P(D < 900 s) ≈ 0.98
  /// Divide rates and host count by this for quick test runs.
  std::uint32_t scale = 1;
};

struct TraceStats {
  std::uint64_t total_entries = 0;      // session arrivals over the day
  std::uint64_t unique_hosts = 0;
  std::uint32_t peak_arrivals_per_s = 0;   // the paper's "3,888 sessions/s"
  std::uint32_t peak_arrival_second = 0;   // when the peak occurred
  std::uint64_t peak_concurrent = 0;       // max simultaneously active flows
  double fraction_under_15min = 0.0;       // calibration target ≈ 0.98
  double mean_duration_s = 0.0;
};

class TraceGenerator {
 public:
  explicit TraceGenerator(TraceConfig cfg) : cfg_(cfg) {}

  /// Streams the whole day and returns aggregate statistics.
  TraceStats run() const;

  /// Per-second arrival counts (the EphID request demand curve for E1).
  std::vector<std::uint32_t> arrivals_per_second() const;

  /// The instantaneous arrival-rate envelope at second `t`.
  double rate_at(std::uint32_t t) const;

  const TraceConfig& config() const { return cfg_; }

 private:
  TraceConfig cfg_;
};

}  // namespace apna::trace

// Anti-replay window (§VIII-D).
//
// "a nonce field is added to the APNA header, and a source host puts a
// unique number for each generated packet. Then, the destination host
// performs replay detection based on the nonces in the packets and
// discards all duplicate packets."
//
// Standard sliding-window filter (as in IPsec): accepts each nonce at most
// once. Nonces that fall behind the window are handled per StartPolicy:
//
//  * StartPolicy::anchor (conservative, the historical behavior): the first
//    observed nonce anchors the window; anything more than window_size
//    below the highest-seen nonce is rejected as a replay. Safe, but the
//    FIRST nonce to arrive defines the floor — if the first packet observed
//    carries a large nonce (a late packet racing ahead, or a burst start
//    mid-stream), every earlier legitimate-but-reordered nonce is branded a
//    replay forever. Deliberate and tested (core_test
//    Replay.TooOldRejectedConservatively).
//
//  * StartPolicy::grace: fixes that first-nonce bias for in-network
//    filtering (§VIII-D at the border router). Nonces BELOW the first-seen
//    nonce but within one window of it are tracked in a second bitmap, so
//    legitimate earlier packets reordered around the stream head are each
//    accepted exactly once. Memory cost: one extra bitmap per window.
//
// The at-most-once property holds under both policies.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.h"
#include "core/sharded.h"
#include "util/result.h"

namespace apna::core {

class ReplayWindow {
 public:
  enum class StartPolicy {
    anchor,  // first nonce anchors the floor (conservative)
    grace,   // pre-first-nonce window accepted once each (startup grace)
  };

  explicit ReplayWindow(std::size_t window_size = 1024,
                        StartPolicy policy = StartPolicy::anchor)
      : bits_(window_size, false), policy_(policy) {}

  /// Returns ok if the nonce is fresh (and records it); Errc::replayed for
  /// duplicates or nonces that fell behind the window (see StartPolicy).
  Result<void> accept(std::uint64_t nonce) {
    const std::size_t n = bits_.size();
    if (!initialized_) {
      initialized_ = true;
      first_seen_ = nonce;
      max_seen_ = nonce;
      bits_.assign(n, false);
      bits_[nonce % n] = true;
      if (policy_ == StartPolicy::grace) pre_bits_.assign(n, false);
      return Result<void>::success();
    }
    if (nonce > max_seen_) {
      const std::uint64_t advance = nonce - max_seen_;
      if (advance >= n) {
        bits_.assign(n, false);
      } else {
        for (std::uint64_t i = 1; i <= advance; ++i)
          bits_[(max_seen_ + i) % n] = false;
      }
      max_seen_ = nonce;
      bits_[nonce % n] = true;
      return Result<void>::success();
    }
    const std::uint64_t age = max_seen_ - nonce;
    if (age >= n) {
      // Behind the live window. Startup grace: nonces sent before the
      // stream head we first observed get one acceptance each.
      if (in_grace_range(nonce)) {
        if (pre_bits_[nonce % n])
          return Result<void>(Errc::replayed, "duplicate pre-window nonce");
        pre_bits_[nonce % n] = true;
        return Result<void>::success();
      }
      return Result<void>(Errc::replayed, "nonce older than window");
    }
    if (bits_[nonce % n])
      return Result<void>(Errc::replayed, "duplicate nonce");
    bits_[nonce % n] = true;
    // A pre-first-seen nonce accepted while still inside the live window
    // must also burn its grace slot, or it would be accepted a second time
    // after the window slides past it.
    if (in_grace_range(nonce)) pre_bits_[nonce % n] = true;
    return Result<void>::success();
  }

  std::uint64_t max_seen() const { return max_seen_; }
  StartPolicy policy() const { return policy_; }

 private:
  /// True when `nonce` lies in [first_seen_ - window, first_seen_) under the
  /// grace policy. Slots are unique within that range (length == window).
  bool in_grace_range(std::uint64_t nonce) const {
    return policy_ == StartPolicy::grace && nonce < first_seen_ &&
           first_seen_ - nonce <= bits_.size();
  }

  std::vector<bool> bits_;
  std::vector<bool> pre_bits_;  // grace bitmap, allocated on first accept
  StartPolicy policy_;
  std::uint64_t max_seen_ = 0;
  std::uint64_t first_seen_ = 0;
  bool initialized_ = false;
};

/// Lock-striped source-EphID → ReplayWindow table: the §VIII-D in-network
/// filter as the border router runs it ("ideally replayed packets should be
/// filtered near [the] replay location"). The shard key is the source-EphID
/// hash — the same key that spreads packets across router workers — so M
/// workers filtering disjoint sources update disjoint stripes. accept() is
/// a read-modify-write under the shard's exclusive lock.
class ShardedReplayFilter {
 public:
  struct Config {
    std::size_t shard_count = kDefaultShardCount;
    std::size_t window_size = 1024;
    /// The BR filters at the source AS where streams are routinely observed
    /// mid-flight, so startup grace is the default here (see ReplayWindow).
    ReplayWindow::StartPolicy policy = ReplayWindow::StartPolicy::grace;
  };

  ShardedReplayFilter() : cfg_(), windows_(cfg_.shard_count) {}
  explicit ShardedReplayFilter(Config cfg)
      : cfg_(cfg), windows_(cfg.shard_count) {}

  /// Accepts or rejects one (source, nonce) observation; creates the
  /// source's window on first sight.
  Result<void> accept(const EphId& src, std::uint64_t nonce) {
    return windows_.update(
        src,
        [this] { return ReplayWindow(cfg_.window_size, cfg_.policy); },
        [nonce](ReplayWindow& w) { return w.accept(nonce); });
  }

  /// Number of tracked sources.
  std::size_t size() const { return windows_.size(); }

 private:
  Config cfg_;
  ShardedMap<EphId, ReplayWindow, EphIdHash> windows_;
};

}  // namespace apna::core

// Anti-replay window (§VIII-D).
//
// "a nonce field is added to the APNA header, and a source host puts a
// unique number for each generated packet. Then, the destination host
// performs replay detection based on the nonces in the packets and
// discards all duplicate packets."
//
// Standard sliding-window filter (as in IPsec): accepts each nonce at most
// once; nonces older than the window are rejected conservatively.
#pragma once

#include <cstdint>
#include <vector>

#include "util/result.h"

namespace apna::core {

class ReplayWindow {
 public:
  explicit ReplayWindow(std::size_t window_size = 1024)
      : bits_(window_size, false) {}

  /// Returns ok if the nonce is fresh (and records it); Errc::replayed for
  /// duplicates or nonces that fell behind the window.
  Result<void> accept(std::uint64_t nonce) {
    const std::size_t n = bits_.size();
    if (!initialized_) {
      initialized_ = true;
      max_seen_ = nonce;
      bits_.assign(n, false);
      bits_[nonce % n] = true;
      return Result<void>::success();
    }
    if (nonce > max_seen_) {
      const std::uint64_t advance = nonce - max_seen_;
      if (advance >= n) {
        bits_.assign(n, false);
      } else {
        for (std::uint64_t i = 1; i <= advance; ++i)
          bits_[(max_seen_ + i) % n] = false;
      }
      max_seen_ = nonce;
      bits_[nonce % n] = true;
      return Result<void>::success();
    }
    const std::uint64_t age = max_seen_ - nonce;
    if (age >= n)
      return Result<void>(Errc::replayed, "nonce older than window");
    if (bits_[nonce % n])
      return Result<void>(Errc::replayed, "duplicate nonce");
    bits_[nonce % n] = true;
    return Result<void>::success();
  }

  std::uint64_t max_seen() const { return max_seen_; }

 private:
  std::vector<bool> bits_;
  std::uint64_t max_seen_ = 0;
  bool initialized_ = false;
};

}  // namespace apna::core

#include "core/handshake.h"

namespace apna::core {

Result<void> validate_peer_cert(const EphIdCertificate& cert,
                                const AsDirectory& dir, ExpTime now) {
  const auto as_info = dir.lookup(cert.aid);
  if (!as_info)
    return Result<void>(Errc::bad_certificate, "unknown issuing AS");
  return cert.verify(as_info->sign_pub, now);
}

Result<InitiatorStart> handshake_initiate(
    const EphIdCertificate& peer_cert, const AsDirectory& dir, ExpTime now,
    const EphIdKeyPair& my_kp, const EphIdCertificate& my_cert,
    crypto::AeadSuite suite, ByteSpan early_data, std::uint64_t nonce) {
  if (auto ok = validate_peer_cert(peer_cert, dir, now); !ok)
    return Result<InitiatorStart>(ok.error());
  if (my_cert.receive_only())
    return Result<InitiatorStart>(
        Errc::unauthorized, "receive-only EphID cannot initiate (§VII-A)");

  auto early = Session::derive_checked(my_kp, my_cert.ephid,
                                       peer_cert.pub.dh, peer_cert.ephid,
                                       suite, /*initiator=*/true);
  if (!early) return Result<InitiatorStart>(early.error());
  InitiatorStart out{
      .init = {},
      .early_session = early.take(),
  };
  out.init.client_cert = my_cert;
  out.init.client_nonce = nonce;
  out.init.suite = suite;
  if (!early_data.empty())
    out.init.early_data = out.early_session.seal(early_data);
  return out;
}

Result<ResponderResult> handshake_respond(
    const HandshakeInit& init, const AsDirectory& dir, ExpTime now,
    const EphIdKeyPair& contacted_kp, const EphIdCertificate& contacted_cert,
    const EphIdKeyPair& serving_kp, const EphIdCertificate& serving_cert,
    std::uint64_t server_nonce) {
  if (auto ok = validate_peer_cert(init.client_cert, dir, now); !ok)
    return Result<ResponderResult>(ok.error());
  if (init.client_cert.receive_only())
    return Result<ResponderResult>(
        Errc::bad_certificate, "client cert is receive-only");
  if (contacted_cert.receive_only() &&
      serving_cert.ephid == contacted_cert.ephid)
    return Result<ResponderResult>(
        Errc::unauthorized,
        "must serve from a distinct EphID when contacted on a receive-only "
        "one (§VII-A)");
  if (serving_cert.receive_only())
    return Result<ResponderResult>(Errc::unauthorized,
                                   "serving EphID must not be receive-only");

  auto main_session = Session::derive_checked(
      serving_kp, serving_cert.ephid, init.client_cert.pub.dh,
      init.client_cert.ephid, init.suite, /*initiator=*/false);
  if (!main_session) return Result<ResponderResult>(main_session.error());
  ResponderResult out{
      .response = {},
      .session = main_session.take(),
      .early_session = std::nullopt,
      .early_data = {},
      .client_cert = init.client_cert,
  };
  out.response.serving_cert = serving_cert;
  out.response.server_nonce = server_nonce;
  out.response.suite = init.suite;

  const bool serving_differs = !(serving_cert.ephid == contacted_cert.ephid);
  if (serving_differs) {
    // Keys vs the contacted EphID: 0-RTT frames keep using them until the
    // client learns the serving EphID.
    out.early_session = Session::derive(contacted_kp, contacted_cert.ephid,
                                        init.client_cert.pub.dh,
                                        init.client_cert.ephid, init.suite,
                                        /*initiator=*/false);
  }
  if (!init.early_data.empty()) {
    // 0-RTT: decrypt with the session keyed to the CONTACTED EphID. When
    // serving == contacted that IS the main session — use it directly so
    // its replay window sees the early frame.
    Session& early = serving_differs ? *out.early_session : out.session;
    auto pt = early.open(init.early_data);
    if (!pt) return Result<ResponderResult>(pt.error());
    out.early_data = pt.take();
  }
  return out;
}

Result<Session> handshake_finish(const HandshakeResponse& resp,
                                 const AsDirectory& dir, ExpTime now,
                                 const EphIdKeyPair& my_kp,
                                 const EphIdCertificate& my_cert,
                                 const EphIdCertificate& contacted_cert) {
  const EphIdCertificate& serving = resp.serving_cert;
  // The serving certificate must come from the same AS as the certificate
  // the client originally validated — otherwise a MitM could splice in a
  // certificate from a colluding AS.
  if (serving.aid != contacted_cert.aid)
    return Result<Session>(Errc::bad_certificate,
                           "serving cert issued by a different AS");
  if (auto ok = validate_peer_cert(serving, dir, now); !ok)
    return Result<Session>(ok.error());
  if (serving.receive_only())
    return Result<Session>(Errc::bad_certificate,
                           "server tried to serve from a receive-only EphID");
  return Session::derive_checked(my_kp, my_cert.ephid, serving.pub.dh,
                                 serving.ephid, resp.suite,
                                 /*initiator=*/true);
}

}  // namespace apna::core

#include "core/session.h"

#include "crypto/hmac.h"
#include "crypto/x25519.h"
#include "wire/codec.h"

namespace apna::core {

namespace {
// Orders the two EphIDs so both sides build the same KDF salt.
Bytes canonical_pair(const EphId& a, const EphId& b) {
  const bool a_first =
      std::lexicographical_compare(a.bytes.begin(), a.bytes.end(),
                                   b.bytes.begin(), b.bytes.end());
  Bytes salt;
  salt.reserve(32);
  const EphId& first = a_first ? a : b;
  const EphId& second = a_first ? b : a;
  append(salt, ByteSpan(first.bytes.data(), 16));
  append(salt, ByteSpan(second.bytes.data(), 16));
  return salt;
}
}  // namespace

Result<Session> Session::derive_checked(
    const EphIdKeyPair& my, const EphId& my_ephid,
    const crypto::X25519PublicKey& peer_dh_pub, const EphId& peer_ephid,
    crypto::AeadSuite suite, bool initiator) {
  const auto dh = crypto::x25519_shared(my.dh_priv, peer_dh_pub);
  std::uint8_t acc = 0;
  for (auto b : dh) acc |= b;
  if (acc == 0)
    return Result<Session>(Errc::bad_certificate,
                           "peer DH key is in the small subgroup");
  return derive(my, my_ephid, peer_dh_pub, peer_ephid, suite, initiator);
}

Session Session::derive(const EphIdKeyPair& my, const EphId& my_ephid,
                        const crypto::X25519PublicKey& peer_dh_pub,
                        const EphId& peer_ephid, crypto::AeadSuite suite,
                        bool initiator) {
  const auto dh = crypto::x25519_shared(my.dh_priv, peer_dh_pub);
  const Bytes salt = canonical_pair(my_ephid, peer_ephid);
  const auto prk = crypto::hkdf_extract(salt, ByteSpan(dh.data(), dh.size()));

  const Bytes k_i2r = crypto::hkdf_expand(prk, to_bytes("apna-sess-i2r"), 32);
  const Bytes k_r2i = crypto::hkdf_expand(prk, to_bytes("apna-sess-r2i"), 32);

  Session s;
  s.suite_ = suite;
  s.my_ephid_ = my_ephid;
  s.peer_ephid_ = peer_ephid;
  s.send_ = crypto::Aead::create(suite, initiator ? k_i2r : k_r2i);
  s.recv_ = crypto::Aead::create(suite, initiator ? k_r2i : k_i2r);
  return s;
}

Bytes Session::seal(ByteSpan plaintext) {
  const std::uint64_t counter = send_counter_++;
  std::uint8_t nonce[12] = {};
  store_be64(nonce + 4, counter);
  wire::Writer w(plaintext.size() + 24);
  w.u64(counter);
  w.raw(send_->seal(ByteSpan(nonce, 12), {}, plaintext));
  return w.take();
}

Result<Bytes> Session::open(ByteSpan frame) {
  wire::Reader r(frame);
  auto counter = r.u64();
  if (!counter) return counter.error();
  std::uint8_t nonce[12] = {};
  store_be64(nonce + 4, *counter);
  auto pt = recv_->open(ByteSpan(nonce, 12), {}, r.rest());
  if (!pt) return Result<Bytes>(Errc::decrypt_failed, "session frame rejected");
  // Replay check AFTER authentication so attackers cannot poison the window.
  if (auto fresh = recv_window_.accept(*counter); !fresh) return fresh.error();
  return *pt;
}

}  // namespace apna::core

#include "core/cert.h"

#include "wire/msg_codec.h"

namespace apna::core {

Bytes EphIdCertificate::tbs() const {
  wire::Writer w(96);
  w.raw(ephid.bytes);
  w.u32(exp_time);
  w.raw(pub.dh);
  w.raw(pub.sig);
  w.u32(aid);
  w.raw(aa_ephid.bytes);
  w.u8(flags);
  return w.take();
}

void EphIdCertificate::tbs_into(wire::MsgWriter& w) const {
  w.raw(ephid.bytes);
  w.u32(exp_time);
  w.raw(pub.dh);
  w.raw(pub.sig);
  w.u32(aid);
  w.raw(aa_ephid.bytes);
  w.u8(flags);
}

void EphIdCertificate::sign_with(const crypto::Ed25519KeyPair& as_key) {
  wire::MsgWriter w(96);
  tbs_into(w);
  sig = as_key.sign(w.span());
}

Result<void> EphIdCertificate::verify(const crypto::Ed25519PublicKey& as_pub,
                                      ExpTime now) const {
  wire::MsgWriter w(96);
  tbs_into(w);
  if (!crypto::ed25519_verify(as_pub, w.span(), sig))
    return Result<void>(Errc::bad_signature, "certificate signature invalid");
  if (exp_time < now)
    return Result<void>(Errc::expired, "certificate expired");
  return Result<void>::success();
}

void EphIdCertificate::serialize_into(wire::Writer& w) const {
  w.raw(ephid.bytes);
  w.u32(exp_time);
  w.raw(pub.dh);
  w.raw(pub.sig);
  w.u32(aid);
  w.raw(aa_ephid.bytes);
  w.u8(flags);
  w.raw(sig);
}

void EphIdCertificate::encode_into(wire::MsgWriter& w) const {
  tbs_into(w);  // wire form = signed fields ‖ signature, single-sourced
  w.raw(sig);
}

Bytes EphIdCertificate::serialize() const {
  wire::Writer w(160);
  serialize_into(w);
  return w.take();
}

Result<EphIdCertificate> EphIdCertificate::parse(wire::Reader& r) {
  EphIdCertificate c;
  auto ephid = r.arr<16>();
  if (!ephid) return ephid.error();
  c.ephid.bytes = *ephid;
  auto exp = r.u32();
  if (!exp) return exp.error();
  c.exp_time = *exp;
  auto dh = r.arr<32>();
  if (!dh) return dh.error();
  c.pub.dh = *dh;
  auto sig_pub = r.arr<32>();
  if (!sig_pub) return sig_pub.error();
  c.pub.sig = *sig_pub;
  auto aid = r.u32();
  if (!aid) return aid.error();
  c.aid = *aid;
  auto aa = r.arr<16>();
  if (!aa) return aa.error();
  c.aa_ephid.bytes = *aa;
  auto flags = r.u8();
  if (!flags) return flags.error();
  c.flags = *flags;
  auto sig = r.arr<64>();
  if (!sig) return sig.error();
  c.sig = *sig;
  return c;
}

Result<EphIdCertificate> EphIdCertificate::parse(ByteSpan data) {
  wire::Reader r(data);
  auto c = parse(r);
  if (!c) return c;
  if (!r.done())
    return Result<EphIdCertificate>(Errc::malformed, "trailing bytes");
  return c;
}

}  // namespace apna::core

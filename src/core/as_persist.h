// Durable image of one AS's control-plane state (ROADMAP item 4).
//
// Two cooperating representations, both built on src/persist:
//
//  * JOURNAL RECORDS — one typed frame per control-plane mutation,
//    emitted at the mutation sites (RegistryService bootstrap,
//    AccountabilityAgent revocation/escalation/domain block,
//    ManagementService issuance, DnsZone put/erase) through the narrow
//    `persist::Sink` hook. The emit_* helpers below are all null-safe:
//    with no sink attached they cost one predicted branch, keeping the
//    hot paths' allocation gates intact.
//
//  * SNAPSHOTS — a full AsState image (secrets, HostDb, RevocationList,
//    VerdictEpoch, issued-EphID metadata, AA domain blocks, DnsZone
//    records) serialized into a persist::snapshot container and
//    published atomically as `snapshot-<gen>.snap`; records that follow
//    go to `journal-<gen>.log`.
//
// Recovery (AsState::recover, declared in core/as_state.h) loads the
// newest valid snapshot — falling back a generation on corruption —
// replays every journal from that generation on up to the last valid
// frame, and advances the verdict epoch once.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/as_state.h"
#include "core/messages.h"
#include "persist/sink.h"
#include "persist/snapshot.h"
#include "persist/vfs.h"

namespace apna::core {

enum class PersistRecordType : std::uint8_t {
  host_upsert = 1,   // RS bootstrap / key replacement
  host_erase = 2,    // HID rotation, §VIII-G2 escalation
  revoke_ephid = 3,  // AA Fig-5 shutoff
  revoke_hid = 4,    // AA §VIII-G2 escalation
  ephid_issued = 5,  // MS Fig-3 issuance metadata
  domain_block = 6,  // AA/resolver Fig-5 domain policy rule
  dns_put = 7,       // DnsZone publish (§VII-A)
  dns_erase = 8,     // DnsZone unpublish
};

/// Issued-EphID metadata (who holds which EphID until when) — part of
/// the snapshot image so a recovered AS still knows what it vouched for.
struct IssuedEphIdMeta {
  EphId ephid;
  ExpTime exp_time = 0;
  Hid hid = 0;
};

// --- journal record emission (all null-safe on `sink`) --------------------
void emit_host_upsert(persist::Sink* sink, const HostRecord& rec);
void emit_host_erase(persist::Sink* sink, Hid hid);
void emit_revoke_ephid(persist::Sink* sink, const EphId& ephid,
                       ExpTime exp_time, Hid hid);
void emit_revoke_hid(persist::Sink* sink, Hid hid);
void emit_ephid_issued(persist::Sink* sink, const EphId& ephid,
                       ExpTime exp_time, Hid hid);
void emit_domain_block(persist::Sink* sink, std::string_view domain);
void emit_dns_put(persist::Sink* sink, const DnsRecord& rec);
void emit_dns_erase(persist::Sink* sink, std::string_view name);

// --- directory layout -----------------------------------------------------
std::string snapshot_path(const std::string& dir, std::uint64_t generation);
std::string journal_path(const std::string& dir, std::uint64_t generation);

/// State held above core that belongs in the snapshot image.
struct AsSnapshotExtras {
  std::span<const IssuedEphIdMeta> issued;
  std::span<const std::string> blocked_domains;
  std::span<const DnsRecord> dns_records;
};

/// Serializes the full image and publishes `snapshot-<gen>.snap`
/// (temp-file + rename; provenance from `info`). Does NOT rotate the
/// journal — the coordinator owning the JournalWriter does that.
Result<void> write_as_snapshot(persist::Vfs& vfs, const std::string& dir,
                               const AsState& as,
                               const AsSnapshotExtras& extras,
                               const persist::SnapshotInfo& info);

/// What AsState::recover hands back: the rebuilt core state plus the
/// recovered metadata the layers above core re-install (services put the
/// DNS records back into a DnsZone, the resolver re-blocks domains).
struct AsStateRecovery {
  std::unique_ptr<AsState> as;
  std::uint64_t snapshot_generation = 0;
  std::uint64_t snapshot_epoch = 0;
  std::uint64_t journal_records_replayed = 0;
  /// Torn/corrupt tail bytes discarded across the replayed journals.
  std::uint64_t journal_bytes_discarded = 0;
  /// Malformed payloads inside CRC-valid frames (skipped, counted).
  std::uint64_t records_malformed = 0;
  /// Corrupt snapshot generations fallen past before a valid one loaded.
  std::uint32_t snapshots_skipped = 0;
  std::vector<IssuedEphIdMeta> issued;
  std::vector<std::string> blocked_domains;
  std::vector<DnsRecord> dns_records;
};

}  // namespace apna::core

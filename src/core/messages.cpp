#include "core/messages.h"

#include <cstring>

#include "crypto/chacha20.h"

namespace apna::core {

using wire::Reader;
using wire::Writer;

// ---- BootstrapRequest -------------------------------------------------------

Bytes BootstrapRequest::serialize() const {
  Writer w(64);
  w.u32(subscriber_id);
  w.var(credential);
  w.raw(host_pub);
  return w.take();
}

Result<BootstrapRequest> BootstrapRequest::parse(ByteSpan data) {
  Reader r(data);
  BootstrapRequest m;
  auto sid = r.u32();
  if (!sid) return sid.error();
  m.subscriber_id = *sid;
  auto cred = r.var();
  if (!cred) return cred.error();
  m.credential.assign(cred->begin(), cred->end());
  auto pub = r.arr<32>();
  if (!pub) return pub.error();
  m.host_pub = *pub;
  return m;
}

// ---- BootstrapResponse ------------------------------------------------------

Bytes BootstrapResponse::id_info_tbs() const {
  Writer w(32);
  w.raw(ctrl_ephid.bytes);
  w.u32(ctrl_exp_time);
  w.u32(hid);
  return w.take();
}

Bytes BootstrapResponse::serialize() const {
  Writer w(512);
  w.u32(hid);
  w.raw(ctrl_ephid.bytes);
  w.u32(ctrl_exp_time);
  w.raw(id_info_sig);
  ms_cert.serialize_into(w);
  dns_cert.serialize_into(w);
  w.u32(aid);
  w.raw(aa_ephid.bytes);
  return w.take();
}

Result<BootstrapResponse> BootstrapResponse::parse(ByteSpan data) {
  Reader r(data);
  BootstrapResponse m;
  auto hid = r.u32();
  if (!hid) return hid.error();
  m.hid = *hid;
  auto ctrl = r.arr<16>();
  if (!ctrl) return ctrl.error();
  m.ctrl_ephid.bytes = *ctrl;
  auto exp = r.u32();
  if (!exp) return exp.error();
  m.ctrl_exp_time = *exp;
  auto sig = r.arr<64>();
  if (!sig) return sig.error();
  m.id_info_sig = *sig;
  auto ms = EphIdCertificate::parse(r);
  if (!ms) return ms.error();
  m.ms_cert = ms.take();
  auto dns = EphIdCertificate::parse(r);
  if (!dns) return dns.error();
  m.dns_cert = dns.take();
  auto aid = r.u32();
  if (!aid) return aid.error();
  m.aid = *aid;
  auto aa = r.arr<16>();
  if (!aa) return aa.error();
  m.aa_ephid.bytes = *aa;
  return m;
}

// ---- EphIdRequest / Response ------------------------------------------------

std::array<std::uint8_t, 16 + 64 + 2> EphIdRequest::pop_tbs() const {
  // "APNA-ephid-pop" padded to a 16-byte domain separator.
  static constexpr std::uint8_t kDomain[16] = {'A', 'P', 'N', 'A', '-', 'e',
                                               'p', 'h', 'i', 'd', '-', 'p',
                                               'o', 'p', 0,   0};
  std::array<std::uint8_t, 16 + 64 + 2> tbs;
  std::memcpy(tbs.data(), kDomain, 16);
  std::memcpy(tbs.data() + 16, ephid_pub.dh.data(), 32);
  std::memcpy(tbs.data() + 48, ephid_pub.sig.data(), 32);
  tbs[80] = flags;
  tbs[81] = static_cast<std::uint8_t>(lifetime);
  return tbs;
}

Bytes EphIdRequest::serialize() const {
  Writer w(136);
  w.raw(ephid_pub.dh);
  w.raw(ephid_pub.sig);
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(lifetime));
  w.raw(pop_sig);
  return w.take();
}

Result<EphIdRequest> EphIdRequest::parse(ByteSpan data) {
  Reader r(data);
  EphIdRequest m;
  auto dh = r.arr<32>();
  if (!dh) return dh.error();
  m.ephid_pub.dh = *dh;
  auto sig = r.arr<32>();
  if (!sig) return sig.error();
  m.ephid_pub.sig = *sig;
  auto flags = r.u8();
  if (!flags) return flags.error();
  m.flags = *flags;
  auto lt = r.u8();
  if (!lt) return lt.error();
  if (*lt > static_cast<std::uint8_t>(EphIdLifetime::long_term))
    return Result<EphIdRequest>(Errc::malformed, "bad lifetime class");
  m.lifetime = static_cast<EphIdLifetime>(*lt);
  auto pop = r.arr<64>();
  if (!pop) return pop.error();
  m.pop_sig = *pop;
  return m;
}

Bytes EphIdResponse::serialize() const { return cert.serialize(); }

Result<EphIdResponse> EphIdResponse::parse(ByteSpan data) {
  auto cert = EphIdCertificate::parse(data);
  if (!cert) return cert.error();
  EphIdResponse m;
  m.cert = cert.take();
  return m;
}

// ---- Control sealing --------------------------------------------------------

Bytes seal_control(const HostAsKeys& keys, std::uint64_t nonce_counter,
                   bool from_host, ByteSpan plaintext) {
  const auto aead = crypto::Aead::create(crypto::AeadSuite::chacha20_poly1305,
                                         keys.enc);
  std::uint8_t nonce[12] = {};
  nonce[0] = from_host ? 0x01 : 0x02;
  store_be64(nonce + 4, nonce_counter);
  Writer w(plaintext.size() + 32);
  w.u64(nonce_counter);
  w.raw(aead->seal(ByteSpan(nonce, 12), {}, plaintext));
  return w.take();
}

Result<Bytes> open_control(const HostAsKeys& keys, bool from_host,
                           ByteSpan sealed) {
  Reader r(sealed);
  auto counter = r.u64();
  if (!counter) return counter.error();
  const auto aead = crypto::Aead::create(crypto::AeadSuite::chacha20_poly1305,
                                         keys.enc);
  std::uint8_t nonce[12] = {};
  nonce[0] = from_host ? 0x01 : 0x02;
  store_be64(nonce + 4, *counter);
  auto pt = aead->open(ByteSpan(nonce, 12), {}, r.rest());
  if (!pt)
    return Result<Bytes>(Errc::decrypt_failed, "control payload rejected");
  return *pt;
}

// ---- Handshake --------------------------------------------------------------

Bytes HandshakeInit::serialize() const {
  Writer w(256);
  client_cert.serialize_into(w);
  w.u64(client_nonce);
  w.u8(static_cast<std::uint8_t>(suite));
  w.var(early_data);
  return w.take();
}

Result<HandshakeInit> HandshakeInit::parse(ByteSpan data) {
  Reader r(data);
  HandshakeInit m;
  auto cert = EphIdCertificate::parse(r);
  if (!cert) return cert.error();
  m.client_cert = cert.take();
  auto nonce = r.u64();
  if (!nonce) return nonce.error();
  m.client_nonce = *nonce;
  auto suite = r.u8();
  if (!suite) return suite.error();
  if (*suite < 1 || *suite > 3)
    return Result<HandshakeInit>(Errc::malformed, "unknown AEAD suite");
  m.suite = static_cast<crypto::AeadSuite>(*suite);
  auto early = r.var();
  if (!early) return early.error();
  m.early_data.assign(early->begin(), early->end());
  return m;
}

Bytes HandshakeResponse::serialize() const {
  Writer w(256);
  serving_cert.serialize_into(w);
  w.u64(server_nonce);
  w.u8(static_cast<std::uint8_t>(suite));
  return w.take();
}

Result<HandshakeResponse> HandshakeResponse::parse(ByteSpan data) {
  Reader r(data);
  HandshakeResponse m;
  auto cert = EphIdCertificate::parse(r);
  if (!cert) return cert.error();
  m.serving_cert = cert.take();
  auto nonce = r.u64();
  if (!nonce) return nonce.error();
  m.server_nonce = *nonce;
  auto suite = r.u8();
  if (!suite) return suite.error();
  if (*suite < 1 || *suite > 3)
    return Result<HandshakeResponse>(Errc::malformed, "unknown AEAD suite");
  m.suite = static_cast<crypto::AeadSuite>(*suite);
  return m;
}

// ---- DNS ---------------------------------------------------------------------

Bytes DnsQuery::serialize() const {
  Writer w(name.size() + 2);
  w.str(name);
  return w.take();
}

Result<DnsQuery> DnsQuery::parse(ByteSpan data) {
  Reader r(data);
  auto name = r.str();
  if (!name) return name.error();
  DnsQuery q;
  q.name = name.take();
  return q;
}

Bytes DnsRecord::tbs() const {
  Writer w(256);
  w.str(name);
  cert.serialize_into(w);
  w.u32(ipv4);
  return w.take();
}

Bytes DnsRecord::serialize() const {
  Writer w(320);
  w.str(name);
  cert.serialize_into(w);
  w.u32(ipv4);
  w.raw(sig);
  return w.take();
}

Result<DnsRecord> DnsRecord::parse(wire::Reader& r) {
  DnsRecord rec;
  auto name = r.str();
  if (!name) return name.error();
  rec.name = name.take();
  auto cert = EphIdCertificate::parse(r);
  if (!cert) return cert.error();
  rec.cert = cert.take();
  auto ip = r.u32();
  if (!ip) return ip.error();
  rec.ipv4 = *ip;
  auto sig = r.arr<64>();
  if (!sig) return sig.error();
  rec.sig = *sig;
  return rec;
}

Bytes DnsResponse::serialize() const {
  Writer w(384);
  w.u8(status);
  w.u8(record.has_value() ? 1 : 0);
  if (record) w.raw(record->serialize());
  return w.take();
}

Result<DnsResponse> DnsResponse::parse(ByteSpan data) {
  Reader r(data);
  DnsResponse resp;
  auto status = r.u8();
  if (!status) return status.error();
  resp.status = *status;
  auto has = r.u8();
  if (!has) return has.error();
  if (*has) {
    auto rec = DnsRecord::parse(r);
    if (!rec) return rec.error();
    resp.record = rec.take();
  }
  return resp;
}

Bytes DnsPublish::serialize() const {
  Writer w(320);
  w.str(name);
  cert.serialize_into(w);
  w.u32(ipv4);
  return w.take();
}

Result<DnsPublish> DnsPublish::parse(ByteSpan data) {
  Reader r(data);
  DnsPublish p;
  auto name = r.str();
  if (!name) return name.error();
  p.name = name.take();
  auto cert = EphIdCertificate::parse(r);
  if (!cert) return cert.error();
  p.cert = cert.take();
  auto ip = r.u32();
  if (!ip) return ip.error();
  p.ipv4 = *ip;
  return p;
}

// ---- Shutoff ------------------------------------------------------------------

Bytes ShutoffRequest::serialize() const {
  Writer w(512);
  w.var(offending_packet);
  w.raw(sig);
  dst_cert.serialize_into(w);
  return w.take();
}

Result<ShutoffRequest> ShutoffRequest::parse(ByteSpan data) {
  Reader r(data);
  ShutoffRequest m;
  auto pkt = r.var();
  if (!pkt) return pkt.error();
  m.offending_packet.assign(pkt->begin(), pkt->end());
  auto sig = r.arr<64>();
  if (!sig) return sig.error();
  m.sig = *sig;
  auto cert = EphIdCertificate::parse(r);
  if (!cert) return cert.error();
  m.dst_cert = cert.take();
  return m;
}

Bytes EphIdRevokeRequest::revoke_tbs(const EphId& ephid) {
  Writer w(32);
  w.str("apna-voluntary-revoke");
  w.raw(ephid.bytes);
  return w.take();
}

Bytes EphIdRevokeRequest::serialize() const {
  Writer w(256);
  w.raw(ephid.bytes);
  w.raw(sig);
  cert.serialize_into(w);
  return w.take();
}

Result<EphIdRevokeRequest> EphIdRevokeRequest::parse(ByteSpan data) {
  Reader r(data);
  EphIdRevokeRequest m;
  auto eph = r.arr<16>();
  if (!eph) return eph.error();
  m.ephid.bytes = *eph;
  auto sig = r.arr<64>();
  if (!sig) return sig.error();
  m.sig = *sig;
  auto cert = EphIdCertificate::parse(r);
  if (!cert) return cert.error();
  m.cert = cert.take();
  return m;
}

Bytes ShutoffResponse::serialize() const {
  Writer w(1);
  w.u8(status);
  return w.take();
}

Result<ShutoffResponse> ShutoffResponse::parse(ByteSpan data) {
  Reader r(data);
  auto status = r.u8();
  if (!status) return status.error();
  ShutoffResponse m;
  m.status = *status;
  return m;
}

// ---- Span codec (MsgWriter/MsgReader) ---------------------------------------
//
// The hot-path twins of the legacy serialize()/parse() bodies above. Output
// must stay byte-identical to serialize() — control_plane_test diffs the
// two on randomized messages.

void BootstrapRequest::encode(wire::MsgWriter& w) const {
  w.u32(subscriber_id);
  w.var(credential);
  w.raw(host_pub);
}

Result<BootstrapRequest> BootstrapRequest::decode(wire::MsgReader& r) {
  BootstrapRequest m;
  auto sid = r.u32();
  if (!sid) return sid.error();
  m.subscriber_id = *sid;
  auto cred = r.var();
  if (!cred) return cred.error();
  m.credential.assign(cred->begin(), cred->end());
  auto pub = r.arr<32>();
  if (!pub) return pub.error();
  m.host_pub = *pub;
  return m;
}

void BootstrapResponse::encode(wire::MsgWriter& w) const {
  w.u32(hid);
  w.raw(ctrl_ephid.bytes);
  w.u32(ctrl_exp_time);
  w.raw(id_info_sig);
  ms_cert.encode_into(w);
  dns_cert.encode_into(w);
  w.u32(aid);
  w.raw(aa_ephid.bytes);
}

Result<BootstrapResponse> BootstrapResponse::decode(wire::MsgReader& r) {
  BootstrapResponse m;
  auto hid = r.u32();
  if (!hid) return hid.error();
  m.hid = *hid;
  auto ctrl = r.arr<16>();
  if (!ctrl) return ctrl.error();
  m.ctrl_ephid.bytes = *ctrl;
  auto exp = r.u32();
  if (!exp) return exp.error();
  m.ctrl_exp_time = *exp;
  auto sig = r.arr<64>();
  if (!sig) return sig.error();
  m.id_info_sig = *sig;
  auto ms = EphIdCertificate::parse(r);
  if (!ms) return ms.error();
  m.ms_cert = ms.take();
  auto dns = EphIdCertificate::parse(r);
  if (!dns) return dns.error();
  m.dns_cert = dns.take();
  auto aid = r.u32();
  if (!aid) return aid.error();
  m.aid = *aid;
  auto aa = r.arr<16>();
  if (!aa) return aa.error();
  m.aa_ephid.bytes = *aa;
  return m;
}

void EphIdRequest::encode(wire::MsgWriter& w) const {
  w.raw(ephid_pub.dh);
  w.raw(ephid_pub.sig);
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(lifetime));
  w.raw(pop_sig);
}

Result<EphIdRequest> EphIdRequest::decode(wire::MsgReader& r) {
  EphIdRequest m;
  auto dh = r.arr<32>();
  if (!dh) return dh.error();
  m.ephid_pub.dh = *dh;
  auto sig = r.arr<32>();
  if (!sig) return sig.error();
  m.ephid_pub.sig = *sig;
  auto flags = r.u8();
  if (!flags) return flags.error();
  m.flags = *flags;
  auto lt = r.u8();
  if (!lt) return lt.error();
  if (*lt > static_cast<std::uint8_t>(EphIdLifetime::long_term))
    return Result<EphIdRequest>(Errc::malformed, "bad lifetime class");
  m.lifetime = static_cast<EphIdLifetime>(*lt);
  auto pop = r.arr<64>();
  if (!pop) return pop.error();
  m.pop_sig = *pop;
  return m;
}

void EphIdResponse::encode(wire::MsgWriter& w) const { cert.encode_into(w); }

Result<EphIdResponse> EphIdResponse::decode(wire::MsgReader& r) {
  auto cert = EphIdCertificate::parse(r);
  if (!cert) return cert.error();
  EphIdResponse m;
  m.cert = cert.take();
  return m;
}

void HandshakeInit::encode(wire::MsgWriter& w) const {
  client_cert.encode_into(w);
  w.u64(client_nonce);
  w.u8(static_cast<std::uint8_t>(suite));
  w.var(early_data);
}

Result<HandshakeInit> HandshakeInit::decode(wire::MsgReader& r) {
  HandshakeInit m;
  auto cert = EphIdCertificate::parse(r);
  if (!cert) return cert.error();
  m.client_cert = cert.take();
  auto nonce = r.u64();
  if (!nonce) return nonce.error();
  m.client_nonce = *nonce;
  auto suite = r.u8();
  if (!suite) return suite.error();
  if (*suite < 1 || *suite > 3)
    return Result<HandshakeInit>(Errc::malformed, "unknown AEAD suite");
  m.suite = static_cast<crypto::AeadSuite>(*suite);
  auto early = r.var();
  if (!early) return early.error();
  m.early_data.assign(early->begin(), early->end());
  return m;
}

void HandshakeResponse::encode(wire::MsgWriter& w) const {
  serving_cert.encode_into(w);
  w.u64(server_nonce);
  w.u8(static_cast<std::uint8_t>(suite));
}

Result<HandshakeResponse> HandshakeResponse::decode(wire::MsgReader& r) {
  HandshakeResponse m;
  auto cert = EphIdCertificate::parse(r);
  if (!cert) return cert.error();
  m.serving_cert = cert.take();
  auto nonce = r.u64();
  if (!nonce) return nonce.error();
  m.server_nonce = *nonce;
  auto suite = r.u8();
  if (!suite) return suite.error();
  if (*suite < 1 || *suite > 3)
    return Result<HandshakeResponse>(Errc::malformed, "unknown AEAD suite");
  m.suite = static_cast<crypto::AeadSuite>(*suite);
  return m;
}

void DnsQuery::encode(wire::MsgWriter& w) const { w.str(name); }

Result<DnsQuery> DnsQuery::decode(wire::MsgReader& r) {
  auto name = r.str();
  if (!name) return name.error();
  DnsQuery q;
  q.name = name.take();
  return q;
}

void DnsRecord::tbs_into(wire::MsgWriter& w) const {
  w.str(name);
  cert.encode_into(w);
  w.u32(ipv4);
}

void DnsRecord::encode(wire::MsgWriter& w) const {
  tbs_into(w);  // wire form = signed fields ‖ signature, single-sourced
  w.raw(sig);
}

Result<DnsRecord> DnsRecord::decode(wire::MsgReader& r) {
  DnsRecord rec;
  auto name = r.str();
  if (!name) return name.error();
  rec.name = name.take();
  auto cert = EphIdCertificate::parse(r);
  if (!cert) return cert.error();
  rec.cert = cert.take();
  auto ip = r.u32();
  if (!ip) return ip.error();
  rec.ipv4 = *ip;
  auto sig = r.arr<64>();
  if (!sig) return sig.error();
  rec.sig = *sig;
  return rec;
}

void DnsResponse::encode(wire::MsgWriter& w) const {
  w.u8(status);
  w.u8(record.has_value() ? 1 : 0);
  if (record) record->encode(w);
}

Result<DnsResponse> DnsResponse::decode(wire::MsgReader& r) {
  DnsResponse resp;
  auto status = r.u8();
  if (!status) return status.error();
  resp.status = *status;
  auto has = r.u8();
  if (!has) return has.error();
  if (*has) {
    auto rec = DnsRecord::decode(r);
    if (!rec) return rec.error();
    resp.record = rec.take();
  }
  return resp;
}

void DnsPublish::encode(wire::MsgWriter& w) const {
  w.str(name);
  cert.encode_into(w);
  w.u32(ipv4);
}

Result<DnsPublish> DnsPublish::decode(wire::MsgReader& r) {
  DnsPublish p;
  auto name = r.str();
  if (!name) return name.error();
  p.name = name.take();
  auto cert = EphIdCertificate::parse(r);
  if (!cert) return cert.error();
  p.cert = cert.take();
  auto ip = r.u32();
  if (!ip) return ip.error();
  p.ipv4 = *ip;
  return p;
}

void ShutoffRequest::encode(wire::MsgWriter& w) const {
  w.var(offending_packet);
  w.raw(sig);
  dst_cert.encode_into(w);
}

Result<ShutoffRequest> ShutoffRequest::decode(wire::MsgReader& r) {
  ShutoffRequest m;
  auto pkt = r.var();
  if (!pkt) return pkt.error();
  m.offending_packet.assign(pkt->begin(), pkt->end());
  auto sig = r.arr<64>();
  if (!sig) return sig.error();
  m.sig = *sig;
  auto cert = EphIdCertificate::parse(r);
  if (!cert) return cert.error();
  m.dst_cert = cert.take();
  return m;
}

void EphIdRevokeRequest::encode(wire::MsgWriter& w) const {
  w.raw(ephid.bytes);
  w.raw(sig);
  cert.encode_into(w);
}

Result<EphIdRevokeRequest> EphIdRevokeRequest::decode(wire::MsgReader& r) {
  EphIdRevokeRequest m;
  auto eph = r.arr<16>();
  if (!eph) return eph.error();
  m.ephid.bytes = *eph;
  auto sig = r.arr<64>();
  if (!sig) return sig.error();
  m.sig = *sig;
  auto cert = EphIdCertificate::parse(r);
  if (!cert) return cert.error();
  m.cert = cert.take();
  return m;
}

void ShutoffResponse::encode(wire::MsgWriter& w) const { w.u8(status); }

Result<ShutoffResponse> ShutoffResponse::decode(wire::MsgReader& r) {
  auto status = r.u8();
  if (!status) return status.error();
  ShutoffResponse m;
  m.status = *status;
  return m;
}

void IcmpMessage::encode(wire::MsgWriter& w) const {
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(code);
  w.var(data);
}

Result<IcmpMessage> IcmpMessage::decode(wire::MsgReader& r) {
  IcmpMessage m;
  auto type = r.u8();
  if (!type) return type.error();
  if (*type > static_cast<std::uint8_t>(IcmpType::packet_too_big))
    return Result<IcmpMessage>(Errc::malformed, "unknown ICMP type");
  m.type = static_cast<IcmpType>(*type);
  auto code = r.u32();
  if (!code) return code.error();
  m.code = *code;
  auto data = r.var();
  if (!data) return data.error();
  m.data.assign(data->begin(), data->end());
  return m;
}

void seal_control_into(wire::MsgWriter& out, const HostAsKeys& keys,
                       std::uint64_t nonce_counter, bool from_host,
                       ByteSpan plaintext) {
  // Stack-constructed AEAD (no Aead::create unique_ptr) sealing straight
  // into the writer's pooled tail: zero heap traffic per call.
  const crypto::ChaCha20Poly1305 aead(
      ByteSpan(keys.enc.data(), keys.enc.size()));
  std::uint8_t nonce[12] = {};
  nonce[0] = from_host ? 0x01 : 0x02;
  store_be64(nonce + 4, nonce_counter);
  out.u64(nonce_counter);
  MutByteSpan dst = out.append_uninitialized(
      plaintext.size() + crypto::ChaCha20Poly1305::kTagSize);
  aead.seal_into(ByteSpan(nonce, 12), {}, plaintext, dst);
}

Result<ByteSpan> open_control_into(wire::MsgWriter& scratch,
                                   const HostAsKeys& keys, bool from_host,
                                   ByteSpan sealed) {
  Reader r(sealed);
  auto counter = r.u64();
  if (!counter) return Result<ByteSpan>(counter.error());
  const ByteSpan ct_tag = r.rest();
  if (ct_tag.size() < crypto::ChaCha20Poly1305::kTagSize)
    return Result<ByteSpan>(Errc::decrypt_failed, "control payload short");
  const crypto::ChaCha20Poly1305 aead(
      ByteSpan(keys.enc.data(), keys.enc.size()));
  std::uint8_t nonce[12] = {};
  nonce[0] = from_host ? 0x01 : 0x02;
  store_be64(nonce + 4, *counter);
  scratch.clear();
  MutByteSpan pt = scratch.append_uninitialized(
      ct_tag.size() - crypto::ChaCha20Poly1305::kTagSize);
  if (!aead.open_into(ByteSpan(nonce, 12), {}, ct_tag, pt))
    return Result<ByteSpan>(Errc::decrypt_failed, "control payload rejected");
  return ByteSpan(pt.data(), pt.size());
}

// ---- ICMP ---------------------------------------------------------------------

Bytes IcmpMessage::serialize() const {
  Writer w(data.size() + 8);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(code);
  w.var(data);
  return w.take();
}

Result<IcmpMessage> IcmpMessage::parse(ByteSpan bytes) {
  Reader r(bytes);
  IcmpMessage m;
  auto type = r.u8();
  if (!type) return type.error();
  if (*type > static_cast<std::uint8_t>(IcmpType::packet_too_big))
    return Result<IcmpMessage>(Errc::malformed, "unknown ICMP type");
  m.type = static_cast<IcmpType>(*type);
  auto code = r.u32();
  if (!code) return code.error();
  m.code = *code;
  auto data = r.var();
  if (!data) return data.error();
  m.data.assign(data->begin(), data->end());
  return m;
}

}  // namespace apna::core

// Identifier types shared across the APNA stack.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "util/bytes.h"
#include "util/hex.h"
#include "wire/apna_header.h"

namespace apna::core {

/// AS identifier — 4 B ("e.g., Autonomous System Number", §III-B).
using Aid = wire::Aid;

/// Host identifier — 4 B, unique within an AS (§III-B: "an HID could be ...
/// a number that is assigned by the AS to the host (e.g., IPv4 address)").
using Hid = std::uint32_t;

/// Expiration time — 4 B Unix timestamp, one-second granularity (§V-A1).
using ExpTime = std::uint32_t;

/// A 16-byte ephemeral identifier (Fig 6). Value type with hashing so it can
/// key revocation lists and session tables.
struct EphId {
  wire::EphIdBytes bytes{};

  bool operator==(const EphId&) const = default;
  bool is_zero() const {
    for (auto b : bytes)
      if (b != 0) return false;
    return true;
  }
  std::string hex() const { return hex_encode(ByteSpan(bytes.data(), 16)); }
};

struct EphIdHash {
  std::size_t operator()(const EphId& e) const {
    // EphIDs are pseudorandom; fold the first 8 bytes.
    return load_le64(e.bytes.data());
  }
};

/// Full endpoint address: AID:EphID tuple (§III-B — "a host is fully
/// addressed by an AID:EphID tuple").
struct Endpoint {
  Aid aid = 0;
  EphId ephid;

  bool operator==(const Endpoint&) const = default;
};

struct EndpointHash {
  std::size_t operator()(const Endpoint& e) const {
    return EphIdHash{}(e.ephid) * 1000003 ^ e.aid;
  }
};

}  // namespace apna::core

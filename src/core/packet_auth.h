// Per-packet source authentication (§IV-D2 / Fig 4).
//
// "the host computes a MAC for every packet that it sends, using the
// symmetric key that is shared with its AS (kHA). This allows the host's AS
// to link every packet to its source" — the proof-of-sending is embedded in
// the packet (design choice 2), an 8-byte truncated AES-CMAC over the
// entire packet except the MAC field itself.
#pragma once

#include <array>

#include "crypto/modes.h"
#include "wire/apna_header.h"

namespace apna::core {

/// Computes the 8-byte packet MAC under the host's kHA-mac key.
/// Allocation-free: CMAC runs over a stack preamble plus the payload span.
inline std::array<std::uint8_t, wire::kMacSize> compute_packet_mac(
    const crypto::AesCmac& mac_key, const wire::Packet& pkt) {
  std::uint8_t preamble[wire::Packet::kMacPreambleMax];
  const std::size_t n = pkt.write_mac_preamble(preamble);
  const auto full = mac_key.mac2(ByteSpan(preamble, n), pkt.payload);
  std::array<std::uint8_t, wire::kMacSize> out;
  std::copy_n(full.begin(), wire::kMacSize, out.begin());
  return out;
}

/// Stamps the MAC into the packet (done by the sending host / AP / gateway).
inline void stamp_packet_mac(const crypto::AesCmac& mac_key,
                             wire::Packet& pkt) {
  pkt.mac = compute_packet_mac(mac_key, pkt);
}

/// Fig 4 egress check: "if !verifyMAC(kHA, packet) drop packet".
inline bool verify_packet_mac(const crypto::AesCmac& mac_key,
                              const wire::Packet& pkt) {
  const auto expect = compute_packet_mac(mac_key, pkt);
  return ct_equal(ByteSpan(expect.data(), expect.size()),
                  ByteSpan(pkt.mac.data(), pkt.mac.size()));
}

}  // namespace apna::core

// Per-packet source authentication (§IV-D2 / Fig 4).
//
// "the host computes a MAC for every packet that it sends, using the
// symmetric key that is shared with its AS (kHA). This allows the host's AS
// to link every packet to its source" — the proof-of-sending is embedded in
// the packet (design choice 2), an 8-byte truncated AES-CMAC over the
// entire packet except the MAC field itself.
//
// All forms are allocation-free: CMAC runs over a stack preamble plus the
// payload span of the wire image. Call shapes:
//  * view forms — verify against / stamp into the contiguous wire image
//    (wire::PacketView / wire::PacketBuf). The data plane uses ONLY these:
//    verification reads the image in place, stamping writes the 8 MAC bytes
//    at their fixed offset. No copy, no re-serialization.
//  * builder forms — same math on the owned wire::Packet struct, for
//    construction-side code that stamps before seal()ing.
//  * batched forms — a burst of views. They take PRE-SCHEDULED AesCmac keys
//    (the HostDb pre-schedules kHA-mac exactly for this), so the AES key
//    schedule is paid once per host instead of once per packet. Batched
//    verdicts agree bit-for-bit with the scalar functions — tested
//    (router_concurrency_test) and required, since the fast path and the
//    single-threaded path must drop the same packets.
#pragma once

#include <array>
#include <span>

#include "crypto/modes.h"
#include "wire/apna_header.h"
#include "wire/packet_buf.h"

namespace apna::core {

// ---- View forms (the data plane's shapes) -----------------------------------

/// Computes the 8-byte packet MAC over a bound wire image.
inline std::array<std::uint8_t, wire::kMacSize> compute_packet_mac(
    const crypto::AesCmac& mac_key, const wire::PacketView& pkt) {
  std::uint8_t preamble[wire::Packet::kMacPreambleMax];
  const std::size_t n = pkt.write_mac_preamble(preamble);
  const auto full = mac_key.mac2(ByteSpan(preamble, n), pkt.payload());
  std::array<std::uint8_t, wire::kMacSize> out;
  std::copy_n(full.begin(), wire::kMacSize, out.begin());
  return out;
}

/// Fig 4 egress check, in place: "if !verifyMAC(kHA, packet) drop packet".
inline bool verify_packet_mac(const crypto::AesCmac& mac_key,
                              const wire::PacketView& pkt) {
  const auto expect = compute_packet_mac(mac_key, pkt);
  return ct_equal(ByteSpan(expect.data(), expect.size()), pkt.mac_span());
}

/// Stamps the MAC into the wire image at its fixed offset (in place).
inline void stamp_packet_mac(const crypto::AesCmac& mac_key,
                             wire::PacketBuf& pkt) {
  const auto mac = compute_packet_mac(mac_key, pkt.view());
  pkt.set_mac(ByteSpan(mac.data(), mac.size()));
}

// ---- Builder forms (construction-side, pre-seal) ----------------------------

inline std::array<std::uint8_t, wire::kMacSize> compute_packet_mac(
    const crypto::AesCmac& mac_key, const wire::Packet& pkt) {
  std::uint8_t preamble[wire::Packet::kMacPreambleMax];
  const std::size_t n = pkt.write_mac_preamble(preamble);
  const auto full = mac_key.mac2(ByteSpan(preamble, n), pkt.payload);
  std::array<std::uint8_t, wire::kMacSize> out;
  std::copy_n(full.begin(), wire::kMacSize, out.begin());
  return out;
}

inline void stamp_packet_mac(const crypto::AesCmac& mac_key,
                             wire::Packet& pkt) {
  pkt.mac = compute_packet_mac(mac_key, pkt);
}

inline bool verify_packet_mac(const crypto::AesCmac& mac_key,
                              const wire::Packet& pkt) {
  const auto expect = compute_packet_mac(mac_key, pkt);
  return ct_equal(ByteSpan(expect.data(), expect.size()),
                  ByteSpan(pkt.mac.data(), pkt.mac.size()));
}

// ---- Batched forms (the concurrent data plane's burst unit) -----------------

/// One element of a verification burst. Packets in a burst may belong to
/// different hosts, so each carries its own pre-scheduled key (borrowed —
/// the caller keeps the HostRecord alive for the duration of the call).
/// The view pointer aliases the caller's burst; nothing is copied.
struct PacketMacJob {
  const wire::PacketView* pkt = nullptr;
  const crypto::AesCmac* key = nullptr;  // null ⇒ verdict 0 (no key, drop)
};

/// Batched Fig 4 MAC check: verdicts[i] = verify_packet_mac(*jobs[i].key,
/// *jobs[i].pkt). Requires verdicts.size() >= jobs.size().
///
/// This is the fused pipeline's per-packet MAC stage: instead of running
/// each packet's CMAC chain serially (latency-bound — each AES round waits
/// on the previous), the burst's chains are interleaved 8 lanes at a time
/// through crypto::aes_cmac_many, keeping the AES unit saturated. Each
/// packet still gets its own full CMAC under its own host key; verdicts
/// are bit-identical to the scalar verify_packet_mac (pinned by
/// router_concurrency_test / crypto_property_test).
inline void verify_packet_macs(std::span<const PacketMacJob> jobs,
                               std::span<std::uint8_t> verdicts) {
  constexpr std::size_t kChunk = 32;
  std::uint8_t pre[kChunk][wire::Packet::kMacPreambleMax];
  crypto::CmacJob cjobs[kChunk];
  std::array<std::uint8_t, 16> tags[kChunk];
  std::size_t at[kChunk];

  for (std::size_t base = 0; base < jobs.size(); base += kChunk) {
    const std::size_t m = std::min(kChunk, jobs.size() - base);
    std::size_t n = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const PacketMacJob& job = jobs[base + i];
      if (job.key == nullptr || job.pkt == nullptr) {
        verdicts[base + i] = 0;  // no key ⇒ drop
        continue;
      }
      const std::size_t pn = job.pkt->write_mac_preamble(pre[n]);
      cjobs[n] = crypto::CmacJob{job.key, ByteSpan(pre[n], pn),
                                 job.pkt->payload()};
      at[n++] = base + i;
    }
    crypto::aes_cmac_many(std::span<const crypto::CmacJob>(cjobs, n), tags);
    for (std::size_t j = 0; j < n; ++j)
      verdicts[at[j]] =
          ct_equal(ByteSpan(tags[j].data(), wire::kMacSize),
                   jobs[at[j]].pkt->mac_span())
              ? 1
              : 0;
  }
}

/// Batched in-place stamping under ONE key — the gateway egress shape: a
/// NAT-mode AP re-MACs a burst of inner packets under its own kHA before
/// forwarding ("the AP replaces the MAC using its shared key with the AS",
/// §VII-B). Each buffer's MAC field is rewritten; nothing else moves.
inline void stamp_packet_macs(const crypto::AesCmac& mac_key,
                              std::span<wire::PacketBuf> pkts) {
  for (wire::PacketBuf& pkt : pkts) stamp_packet_mac(mac_key, pkt);
}

}  // namespace apna::core

// End-to-end encrypted sessions (§IV-D1/2).
//
// "two hosts first generate a shared symmetric key for their communication
// session. This key is then used to encrypt all traffic that belongs to
// this communication session." The key is derived ONLY from the two
// EphID key pairs — never from long-term keys — which is exactly what gives
// perfect forward secrecy (§VI-B): compromise of K-_AS or K-_H reveals
// nothing about past session keys.
//
// Wire framing of one encrypted data unit:  u64 counter ‖ AEAD(ct ‖ tag).
// Direction separation comes from distinct send/recv keys, and a sliding
// replay window rejects duplicated frames (§VIII-D).
#pragma once

#include <cstdint>
#include <memory>

#include "core/ids.h"
#include "core/keys.h"
#include "core/replay.h"
#include "crypto/aead.h"
#include "util/result.h"

namespace apna::core {

class Session {
 public:
  /// Derives the session key k_{EaEb} between `my` (private half held
  /// locally) and the peer's certificate public key, bound to the two
  /// EphIDs. Both sides derive identical material; `initiator` selects
  /// which derived key is used for sending vs receiving.
  static Session derive(const EphIdKeyPair& my, const EphId& my_ephid,
                        const crypto::X25519PublicKey& peer_dh_pub,
                        const EphId& peer_ephid, crypto::AeadSuite suite,
                        bool initiator);

  /// Like derive(), but rejects peer public keys in the small subgroup
  /// (all-zero X25519 output, RFC 7748 §6.1) — a malicious peer must not be
  /// able to force a predictable session key. Handshakes use this form.
  static Result<Session> derive_checked(
      const EphIdKeyPair& my, const EphId& my_ephid,
      const crypto::X25519PublicKey& peer_dh_pub, const EphId& peer_ephid,
      crypto::AeadSuite suite, bool initiator);

  /// Encrypts one application payload into a wire frame.
  Bytes seal(ByteSpan plaintext);

  /// Authenticates, replay-checks and decrypts one frame.
  Result<Bytes> open(ByteSpan frame);

  crypto::AeadSuite suite() const { return suite_; }
  const EphId& my_ephid() const { return my_ephid_; }
  const EphId& peer_ephid() const { return peer_ephid_; }
  std::uint64_t frames_sent() const { return send_counter_; }

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

 private:
  Session() = default;

  crypto::AeadSuite suite_ = crypto::AeadSuite::chacha20_poly1305;
  std::unique_ptr<crypto::Aead> send_;
  std::unique_ptr<crypto::Aead> recv_;
  std::uint64_t send_counter_ = 0;
  ReplayWindow recv_window_{1024};
  EphId my_ephid_;
  EphId peer_ephid_;
};

}  // namespace apna::core

// Connection establishment (§IV-D1) with the client-server extension for
// receive-only EphIDs (§VII-A) and 0-RTT early data (§VII-C).
//
// Sequence:
//   initiator                                 responder
//   ---------                                 ---------
//   handshake_initiate()  --HandshakeInit-->  handshake_respond()
//     (may carry early data encrypted against   (picks a serving EphID when
//      the contacted, possibly receive-only,     the contacted one is
//      EphID)                                    receive-only)
//   handshake_finish()   <--HandshakeResp--
//
// Both sides verify the peer's certificate against the issuing AS's public
// key (the RPKI stand-in). A MitM swapping certificates fails exactly as
// §VI-B argues: it cannot produce a certificate signed by the peer's AS.
#pragma once

#include "core/as_directory.h"
#include "core/cert.h"
#include "core/messages.h"
#include "core/session.h"

namespace apna::core {

/// Validates a peer certificate against the directory (issuer signature +
/// expiry). Used by both handshake sides.
Result<void> validate_peer_cert(const EphIdCertificate& cert,
                                const AsDirectory& dir, ExpTime now);

struct InitiatorStart {
  HandshakeInit init;    // message to send
  Session early_session; // keys vs the CONTACTED EphID (0-RTT + fallback)
};

/// Builds the HandshakeInit and the 0-RTT session. `early_data`, when
/// non-empty, is sealed into the init with the early session (§VII-C — at
/// the cost that a later compromise of the contacted EphID's key reveals it).
Result<InitiatorStart> handshake_initiate(
    const EphIdCertificate& peer_cert, const AsDirectory& dir, ExpTime now,
    const EphIdKeyPair& my_kp, const EphIdCertificate& my_cert,
    crypto::AeadSuite suite, ByteSpan early_data, std::uint64_t nonce);

struct ResponderResult {
  HandshakeResponse response;  // message to send back
  Session session;             // keys vs the SERVING EphID
  /// Present when serving ≠ contacted: keys vs the CONTACTED EphID, kept to
  /// decrypt 0-RTT frames the client sends before learning the serving one.
  std::optional<Session> early_session;
  Bytes early_data;            // decrypted 0-RTT payload (may be empty)
  EphIdCertificate client_cert;
};

/// Responder side. `serving_*` may equal `contacted_*` (plain host-to-host);
/// when the contacted EphID is receive-only they MUST differ (§VII-A — the
/// server never sources traffic from a receive-only EphID).
Result<ResponderResult> handshake_respond(
    const HandshakeInit& init, const AsDirectory& dir, ExpTime now,
    const EphIdKeyPair& contacted_kp, const EphIdCertificate& contacted_cert,
    const EphIdKeyPair& serving_kp, const EphIdCertificate& serving_cert,
    std::uint64_t server_nonce);

/// Initiator completion: validates the serving certificate (same issuing AS
/// as the contacted one, not receive-only) and derives the data session.
Result<Session> handshake_finish(const HandshakeResponse& resp,
                                 const AsDirectory& dir, ExpTime now,
                                 const EphIdKeyPair& my_kp,
                                 const EphIdCertificate& my_cert,
                                 const EphIdCertificate& contacted_cert);

}  // namespace apna::core

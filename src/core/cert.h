// Short-lived EphID certificates (§IV-C, Fig 3):
//
//   C_EphID = { EphID, ExpTime, K+_EphID, AID_AS, EphID_aa } signed K-_AS
//
// The certificate binds an EphID to its (host-generated) public keys, names
// the issuing AS, and carries the accountability agent's EphID so a peer
// can address shutoff requests (§IV-E). Receive-only EphIDs (§VII-A) and
// AS-service EphIDs are marked by flags.
#pragma once

#include <cstdint>

#include "core/ids.h"
#include "core/keys.h"
#include "crypto/ed25519.h"
#include "util/result.h"
#include "wire/codec.h"

namespace apna::wire {
class MsgWriter;  // wire/msg_codec.h — pooled span-based encoder
}

namespace apna::core {

enum CertFlags : std::uint8_t {
  kCertReceiveOnly = 0x01,  // never valid as a source EphID (§VII-A)
  kCertService = 0x02,      // an AS-internal service endpoint (MS, DNS, AA)
};

struct EphIdCertificate {
  EphId ephid;
  ExpTime exp_time = 0;
  EphIdPublicKeys pub;    // K+_EphID (DH + signature halves)
  Aid aid = 0;            // issuing AS
  EphId aa_ephid;         // accountability agent of the issuing AS
  std::uint8_t flags = 0;
  crypto::Ed25519Signature sig{};  // by K-_AS

  bool receive_only() const { return (flags & kCertReceiveOnly) != 0; }
  bool service() const { return (flags & kCertService) != 0; }

  /// To-be-signed encoding (all fields except the signature).
  Bytes tbs() const;

  /// Signs in place with the AS's signing key.
  void sign_with(const crypto::Ed25519KeyPair& as_key);

  /// Signature + expiry check against the claimed issuer key.
  /// Errc::bad_signature / Errc::expired on failure.
  Result<void> verify(const crypto::Ed25519PublicKey& as_pub,
                      ExpTime now) const;

  Bytes serialize() const;
  static Result<EphIdCertificate> parse(ByteSpan data);
  static Result<EphIdCertificate> parse(wire::Reader& r);
  void serialize_into(wire::Writer& w) const;

  /// Pooled-codec twin of serialize_into (byte-identical output; pinned by
  /// control_plane_test). Hot paths encode through this form only.
  void encode_into(wire::MsgWriter& w) const;
  /// tbs() without the heap round trip: appends the to-be-signed bytes to
  /// a (pooled) scratch writer for sign/verify call sites.
  void tbs_into(wire::MsgWriter& w) const;

  bool operator==(const EphIdCertificate&) const = default;
};

}  // namespace apna::core

#include "core/ephid.h"

#include <cstring>

#include "crypto/hmac.h"

namespace apna::core {

EphIdCodec::EphIdCodec(ByteSpan ka16)
    : enc_(crypto::derive_key16(ka16, "apna-ka-prime")),
      mac_(crypto::derive_key16(ka16, "apna-ka-double-prime")) {}

EphId EphIdCodec::issue_with_iv(Hid hid, ExpTime exp_time,
                                std::uint32_t iv) const {
  // Counter block: IV(4) ‖ 0^12 (Fig 6 top-left).
  std::uint8_t counter[16] = {};
  store_be32(counter, iv);

  // Plaintext block: HID(4) ‖ ExpTime(4) ‖ 0^8, one AES operation.
  std::uint8_t keystream[16];
  enc_.encrypt_block(counter, keystream);
  std::uint8_t ct[8];
  std::uint8_t pt[8];
  store_be32(pt, hid);
  store_be32(pt + 4, exp_time);
  for (int i = 0; i < 8; ++i)
    ct[i] = static_cast<std::uint8_t>(pt[i] ^ keystream[i]);

  // Tag input: CT(8) ‖ IV(4) ‖ 0^4 — one fixed-length block (footnote 3).
  std::uint8_t mac_in[16] = {};
  std::memcpy(mac_in, ct, 8);
  store_be32(mac_in + 8, iv);
  std::uint8_t tag[16];
  mac_.encrypt_block(mac_in, tag);  // single-block CBC-MAC == raw AES

  EphId out;
  std::memcpy(out.bytes.data() + kCtOffset, ct, 8);
  store_be32(out.bytes.data() + kIvOffset, iv);
  std::memcpy(out.bytes.data() + kMacOffset, tag, 4);
  return out;
}

EphId EphIdCodec::issue(Hid hid, ExpTime exp_time, crypto::Rng& rng) const {
  return issue_with_iv(hid, exp_time, rng.next_u32());
}

Result<EphIdPlain> EphIdCodec::open(const EphId& ephid) const {
  const std::uint8_t* ct = ephid.bytes.data() + kCtOffset;
  const std::uint32_t iv = load_be32(ephid.bytes.data() + kIvOffset);

  // Verify the tag before touching the plaintext (Encrypt-then-MAC).
  std::uint8_t mac_in[16] = {};
  std::memcpy(mac_in, ct, 8);
  store_be32(mac_in + 8, iv);
  std::uint8_t tag[16];
  mac_.encrypt_block(mac_in, tag);
  if (!ct_equal(ByteSpan(tag, 4), ByteSpan(ephid.bytes.data() + kMacOffset, 4)))
    return Result<EphIdPlain>(Errc::decrypt_failed, "EphID tag mismatch");

  std::uint8_t counter[16] = {};
  store_be32(counter, iv);
  std::uint8_t keystream[16];
  enc_.encrypt_block(counter, keystream);

  std::uint8_t pt[8];
  for (int i = 0; i < 8; ++i)
    pt[i] = static_cast<std::uint8_t>(ct[i] ^ keystream[i]);

  EphIdPlain plain;
  plain.hid = load_be32(pt);
  plain.exp_time = load_be32(pt + 4);
  return plain;
}

}  // namespace apna::core

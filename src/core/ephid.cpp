#include "core/ephid.h"

#include <algorithm>
#include <cstring>

#include "crypto/hmac.h"

namespace apna::core {

EphIdCodec::EphIdCodec(ByteSpan ka16)
    : enc_(crypto::derive_key16(ka16, "apna-ka-prime")),
      mac_(crypto::derive_key16(ka16, "apna-ka-double-prime")) {}

EphId EphIdCodec::issue_with_iv(Hid hid, ExpTime exp_time,
                                std::uint32_t iv) const {
  // Counter block: IV(4) ‖ 0^12 (Fig 6 top-left).
  std::uint8_t counter[16] = {};
  store_be32(counter, iv);

  // Plaintext block: HID(4) ‖ ExpTime(4) ‖ 0^8, one AES operation.
  std::uint8_t keystream[16];
  enc_.encrypt_block(counter, keystream);
  std::uint8_t ct[8];
  std::uint8_t pt[8];
  store_be32(pt, hid);
  store_be32(pt + 4, exp_time);
  for (int i = 0; i < 8; ++i)
    ct[i] = static_cast<std::uint8_t>(pt[i] ^ keystream[i]);

  // Tag input: CT(8) ‖ IV(4) ‖ 0^4 — one fixed-length block (footnote 3).
  std::uint8_t mac_in[16] = {};
  std::memcpy(mac_in, ct, 8);
  store_be32(mac_in + 8, iv);
  std::uint8_t tag[16];
  mac_.encrypt_block(mac_in, tag);  // single-block CBC-MAC == raw AES

  EphId out;
  std::memcpy(out.bytes.data() + kCtOffset, ct, 8);
  store_be32(out.bytes.data() + kIvOffset, iv);
  std::memcpy(out.bytes.data() + kMacOffset, tag, 4);
  return out;
}

EphId EphIdCodec::issue(Hid hid, ExpTime exp_time, crypto::Rng& rng) const {
  return issue_with_iv(hid, exp_time, rng.next_u32());
}

Result<EphIdPlain> EphIdCodec::open(const EphId& ephid) const {
  const std::uint8_t* ct = ephid.bytes.data() + kCtOffset;
  const std::uint32_t iv = load_be32(ephid.bytes.data() + kIvOffset);

  // Verify the tag before touching the plaintext (Encrypt-then-MAC).
  std::uint8_t mac_in[16] = {};
  std::memcpy(mac_in, ct, 8);
  store_be32(mac_in + 8, iv);
  std::uint8_t tag[16];
  mac_.encrypt_block(mac_in, tag);
  if (!ct_equal(ByteSpan(tag, 4), ByteSpan(ephid.bytes.data() + kMacOffset, 4)))
    return Result<EphIdPlain>(Errc::decrypt_failed, "EphID tag mismatch");

  std::uint8_t counter[16] = {};
  store_be32(counter, iv);
  std::uint8_t keystream[16];
  enc_.encrypt_block(counter, keystream);

  std::uint8_t pt[8];
  for (int i = 0; i < 8; ++i)
    pt[i] = static_cast<std::uint8_t>(ct[i] ^ keystream[i]);

  EphIdPlain plain;
  plain.hid = load_be32(pt);
  plain.exp_time = load_be32(pt + 4);
  return plain;
}

void EphIdCodec::open_batch_gather(const std::uint8_t* const* ephids16,
                                   std::size_t n, EphIdPlain* plain,
                                   std::uint8_t* ok) const {
  // Gather/scatter in fixed chunks so the working buffers stay on the stack
  // and encrypt_blocks sees enough independent blocks to pipeline.
  constexpr std::size_t kChunk = 32;
  std::uint8_t in[kChunk * 16];
  std::uint8_t out[kChunk * 16];

  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t m = std::min(kChunk, n - base);

    // Pass 1 — tag check (Encrypt-then-MAC: verify before decrypting).
    // Single-block CBC-MAC == one AES call, so the whole chunk's tags are
    // one gathered encrypt_blocks invocation.
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint8_t* bytes = ephids16[base + i];
      std::uint8_t* mac_in = in + 16 * i;
      std::memset(mac_in, 0, 16);
      std::memcpy(mac_in, bytes + kCtOffset, 8);
      std::memcpy(mac_in + 8, bytes + kIvOffset, 4);  // IV, already BE
    }
    mac_.encrypt_blocks(in, out, m);
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint8_t* bytes = ephids16[base + i];
      ok[base + i] = ct_equal(ByteSpan(out + 16 * i, 4),
                              ByteSpan(bytes + kMacOffset, 4))
                         ? 1
                         : 0;
    }

    // Pass 2 — CTR keystream for the whole chunk (computed branchlessly for
    // failed tags too; their plaintext is simply never exposed).
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint8_t* bytes = ephids16[base + i];
      std::uint8_t* counter = in + 16 * i;
      std::memset(counter, 0, 16);
      std::memcpy(counter, bytes + kIvOffset, 4);
    }
    enc_.encrypt_blocks(in, out, m);
    for (std::size_t i = 0; i < m; ++i) {
      plain[base + i] = EphIdPlain{};
      if (!ok[base + i]) continue;
      const std::uint8_t* ct = ephids16[base + i] + kCtOffset;
      const std::uint8_t* ks = out + 16 * i;
      std::uint8_t pt[8];
      for (int b = 0; b < 8; ++b)
        pt[b] = static_cast<std::uint8_t>(ct[b] ^ ks[b]);
      plain[base + i].hid = load_be32(pt);
      plain[base + i].exp_time = load_be32(pt + 4);
    }
  }
}

void EphIdCodec::open_batch(const EphId* ephids, std::size_t n,
                            EphIdPlain* plain, std::uint8_t* ok) const {
  constexpr std::size_t kChunk = 64;
  const std::uint8_t* ptrs[kChunk];
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t m = std::min(kChunk, n - base);
    for (std::size_t i = 0; i < m; ++i)
      ptrs[i] = ephids[base + i].bytes.data();
    open_batch_gather(ptrs, m, plain + base, ok + base);
  }
}

}  // namespace apna::core

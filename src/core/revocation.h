// revoked_ids — the border routers' revocation state (Fig 4/5, §VIII-G2).
//
// Stores revoked EphIDs with their expiry so entries can be purged once the
// EphID would be rejected anyway ("since EphIDs will expire over time ...
// the expired EphIDs can be removed from revoked_EphIDs"). Also tracks
// per-host revocation counts so the AS can apply the §VIII-G2 escalation
// policy (revoke the HID after too many shutoffs) and a revoked-HID set.
//
// Both tables are lock-striped (core/sharded.h): the Fig 4 "EphID ∈
// revoked_EphIDs" check runs on every forwarded packet from every router
// worker, while the AA applies revocations concurrently (Fig 5). A
// revocation becomes visible to a worker the moment its shard lock is
// released — there is no global pause.
#pragma once

#include <cstdint>

#include "core/ids.h"
#include "core/sharded.h"

namespace apna::core {

class RevocationList {
 public:
  /// Max preemptive revocations per host before HID escalation (§VIII-G2).
  /// `epoch` (optional) is bumped AFTER each revocation becomes visible in
  /// the striped tables, instantly invalidating every per-worker
  /// flow-cache verdict issued before it (core/flow_cache.h). purge_expired
  /// never bumps: un-revoking an already expired EphID cannot change a
  /// verdict (both paths drop it as expired).
  explicit RevocationList(std::uint32_t max_revocations_per_host = 16,
                          std::size_t shard_count = kDefaultShardCount,
                          VerdictEpoch* epoch = nullptr)
      : max_per_host_(max_revocations_per_host),
        ephids_(shard_count),
        hosts_(shard_count),
        epoch_(epoch) {}

  /// Marks an EphID revoked. Returns the host's updated revocation count.
  std::uint32_t revoke_ephid(const EphId& ephid, ExpTime exp_time, Hid hid) {
    ephids_.insert_or_assign(ephid, exp_time);
    const std::uint32_t count = hosts_.update(
        hid, [] { return HostRevState{}; },
        [](HostRevState& h) { return ++h.revocations; });
    if (epoch_) epoch_->bump();
    return count;
  }

  bool is_revoked(const EphId& ephid) const { return ephids_.contains(ephid); }

  void prefetch(const EphId& ephid) const { ephids_.prefetch(ephid); }

  /// HID escalation (§VIII-G2): all of the host's EphIDs become invalid.
  void revoke_hid(Hid hid) {
    hosts_.update(
        hid, [] { return HostRevState{}; },
        [](HostRevState& h) { h.hid_revoked = true; });
    if (epoch_) epoch_->bump();
  }

  bool is_hid_revoked(Hid hid) const {
    const auto h = hosts_.find(hid);
    return h && h->hid_revoked;
  }

  /// True when the host has hit the escalation threshold.
  bool over_limit(Hid hid) const {
    const auto h = hosts_.find(hid);
    return h && h->revocations >= max_per_host_;
  }

  /// §VIII-G2 measure 1: drop entries whose EphIDs have expired anyway.
  /// Proceeds shard by shard so routers keep forwarding during the purge.
  /// Returns the number of purged entries.
  std::size_t purge_expired(ExpTime now) {
    return ephids_.erase_if(
        [now](const EphId&, ExpTime exp) { return exp < now; });
  }

  std::size_t size() const { return ephids_.size(); }

  /// Snapshot iteration for the durability layer (shared-locked per
  /// stripe, see ShardedMap::for_each).
  template <class Fn>
  void for_each_ephid(Fn fn) const {
    ephids_.for_each([&](const EphId& e, ExpTime exp) { fn(e, exp); });
  }
  template <class Fn>
  void for_each_host(Fn fn) const {
    hosts_.for_each([&](Hid hid, const HostRevState& h) {
      fn(hid, h.revocations, h.hid_revoked);
    });
  }

  /// Recovery-only restore paths. They install state without bumping the
  /// verdict epoch and without re-running the escalation side effects —
  /// AsState::recover replays the image, then advances the epoch once.
  void restore_ephid(const EphId& ephid, ExpTime exp_time) {
    ephids_.insert_or_assign(ephid, exp_time);
  }
  void restore_host(Hid hid, std::uint32_t revocations, bool hid_revoked) {
    hosts_.update(
        hid, [] { return HostRevState{}; },
        [&](HostRevState& h) {
          h.revocations = revocations;
          h.hid_revoked = hid_revoked;
        });
  }

  /// Approximate resident footprint of both striped tables (EphID → exp
  /// and per-host escalation state), from ShardedMap::stripe_stats — real
  /// per-stripe occupancy, not an estimate over assumed load factors. The
  /// §VIII-G2 sizing question ("can revoked_EphIDs grow unboundedly?") gets
  /// a measured answer in the mass-revocation scenarios.
  std::size_t memory_bytes() const {
    return ephids_.approx_memory_bytes() + hosts_.approx_memory_bytes();
  }

 private:
  struct HostRevState {
    std::uint32_t revocations = 0;  // §VIII-G2 escalation counter
    bool hid_revoked = false;
  };

  std::uint32_t max_per_host_;
  ShardedMap<EphId, ExpTime, EphIdHash> ephids_;
  ShardedMap<Hid, HostRevState> hosts_;
  VerdictEpoch* epoch_;
};

}  // namespace apna::core

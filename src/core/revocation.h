// revoked_ids — the border routers' revocation state (Fig 4/5, §VIII-G2).
//
// Stores revoked EphIDs with their expiry so entries can be purged once the
// EphID would be rejected anyway ("since EphIDs will expire over time ...
// the expired EphIDs can be removed from revoked_EphIDs"). Also tracks
// per-host revocation counts so the AS can apply the §VIII-G2 escalation
// policy (revoke the HID after too many shutoffs) and a revoked-HID set.
#pragma once

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "core/ids.h"

namespace apna::core {

class RevocationList {
 public:
  /// Max preemptive revocations per host before HID escalation (§VIII-G2).
  explicit RevocationList(std::uint32_t max_revocations_per_host = 16)
      : max_per_host_(max_revocations_per_host) {}

  /// Marks an EphID revoked. Returns the host's updated revocation count.
  std::uint32_t revoke_ephid(const EphId& ephid, ExpTime exp_time, Hid hid) {
    std::unique_lock lock(mu_);
    ephids_[ephid] = exp_time;
    return ++per_host_count_[hid];
  }

  bool is_revoked(const EphId& ephid) const {
    std::shared_lock lock(mu_);
    return ephids_.contains(ephid);
  }

  /// HID escalation (§VIII-G2): all of the host's EphIDs become invalid.
  void revoke_hid(Hid hid) {
    std::unique_lock lock(mu_);
    hids_.insert(hid);
  }

  bool is_hid_revoked(Hid hid) const {
    std::shared_lock lock(mu_);
    return hids_.contains(hid);
  }

  /// True when the host has hit the escalation threshold.
  bool over_limit(Hid hid) const {
    std::shared_lock lock(mu_);
    auto it = per_host_count_.find(hid);
    return it != per_host_count_.end() && it->second >= max_per_host_;
  }

  /// §VIII-G2 measure 1: drop entries whose EphIDs have expired anyway.
  /// Returns the number of purged entries.
  std::size_t purge_expired(ExpTime now) {
    std::unique_lock lock(mu_);
    std::size_t purged = 0;
    for (auto it = ephids_.begin(); it != ephids_.end();) {
      if (it->second < now) {
        it = ephids_.erase(it);
        ++purged;
      } else {
        ++it;
      }
    }
    return purged;
  }

  std::size_t size() const {
    std::shared_lock lock(mu_);
    return ephids_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::uint32_t max_per_host_;
  std::unordered_map<EphId, ExpTime, EphIdHash> ephids_;
  std::unordered_set<Hid> hids_;
  std::unordered_map<Hid, std::uint32_t> per_host_count_;
};

}  // namespace apna::core

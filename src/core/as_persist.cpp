#include "core/as_persist.h"

#include <algorithm>
#include <map>
#include <set>

#include "persist/journal.h"
#include "wire/codec.h"
#include "wire/msg_codec.h"

namespace apna::core {
namespace {

std::uint8_t type_byte(PersistRecordType t) {
  return static_cast<std::uint8_t>(t);
}

ByteSpan span_of(const Bytes& b) { return ByteSpan(b.data(), b.size()); }

}  // namespace

// ---------------------------------------------------------------------------
// Journal record emission

void emit_host_upsert(persist::Sink* sink, const HostRecord& rec) {
  if (!sink) return;
  wire::MsgWriter w(96);
  w.u32(rec.hid);
  w.u32(rec.subscriber_id);
  w.raw(rec.keys.enc);
  w.raw(rec.keys.mac);
  w.raw(rec.host_pub);
  sink->append(type_byte(PersistRecordType::host_upsert), w.span());
}

void emit_host_erase(persist::Sink* sink, Hid hid) {
  if (!sink) return;
  wire::MsgWriter w(8);
  w.u32(hid);
  sink->append(type_byte(PersistRecordType::host_erase), w.span());
}

void emit_revoke_ephid(persist::Sink* sink, const EphId& ephid,
                       ExpTime exp_time, Hid hid) {
  if (!sink) return;
  wire::MsgWriter w(32);
  w.raw(ephid.bytes);
  w.u32(exp_time);
  w.u32(hid);
  sink->append(type_byte(PersistRecordType::revoke_ephid), w.span());
}

void emit_revoke_hid(persist::Sink* sink, Hid hid) {
  if (!sink) return;
  wire::MsgWriter w(8);
  w.u32(hid);
  sink->append(type_byte(PersistRecordType::revoke_hid), w.span());
}

void emit_ephid_issued(persist::Sink* sink, const EphId& ephid,
                       ExpTime exp_time, Hid hid) {
  if (!sink) return;
  wire::MsgWriter w(32);
  w.raw(ephid.bytes);
  w.u32(exp_time);
  w.u32(hid);
  sink->append(type_byte(PersistRecordType::ephid_issued), w.span());
}

void emit_domain_block(persist::Sink* sink, std::string_view domain) {
  if (!sink) return;
  wire::MsgWriter w(domain.size() + 4);
  w.str(domain);
  sink->append(type_byte(PersistRecordType::domain_block), w.span());
}

void emit_dns_put(persist::Sink* sink, const DnsRecord& rec) {
  if (!sink) return;
  const Bytes payload = rec.serialize();
  sink->append(type_byte(PersistRecordType::dns_put), span_of(payload));
}

void emit_dns_erase(persist::Sink* sink, std::string_view name) {
  if (!sink) return;
  wire::MsgWriter w(name.size() + 4);
  w.str(name);
  sink->append(type_byte(PersistRecordType::dns_erase), w.span());
}

// ---------------------------------------------------------------------------
// Directory layout

std::string snapshot_path(const std::string& dir, std::uint64_t generation) {
  return dir + "/snapshot-" + std::to_string(generation) + ".snap";
}

std::string journal_path(const std::string& dir, std::uint64_t generation) {
  return dir + "/journal-" + std::to_string(generation) + ".log";
}

// ---------------------------------------------------------------------------
// Snapshot image

namespace {

constexpr std::uint16_t kImageVersion = 1;

void put_secrets(wire::Writer& w, const AsSecrets& s) {
  w.raw(ByteSpan(s.ka.data(), s.ka.size()));
  w.raw(ByteSpan(s.ka_infra.data(), s.ka_infra.size()));
  w.raw(ByteSpan(s.sign.seed.data(), s.sign.seed.size()));
  w.raw(ByteSpan(s.sign.pub.data(), s.sign.pub.size()));
  w.raw(ByteSpan(s.dh.priv.data(), s.dh.priv.size()));
  w.raw(ByteSpan(s.dh.pub.data(), s.dh.pub.size()));
}

Result<AsSecrets> get_secrets(wire::Reader& r) {
  AsSecrets s;
  auto ka = r.arr<16>();
  auto ka_infra = r.arr<16>();
  auto seed = r.arr<32>();
  auto pub = r.arr<32>();
  auto dpriv = r.arr<32>();
  auto dpub = r.arr<32>();
  if (!ka || !ka_infra || !seed || !pub || !dpriv || !dpub)
    return Result<AsSecrets>(Errc::malformed, "snapshot secrets");
  s.ka = *ka;
  s.ka_infra = *ka_infra;
  s.sign.seed = *seed;
  s.sign.pub = *pub;
  s.dh.priv = *dpriv;
  s.dh.pub = *dpub;
  return Result<AsSecrets>(s);
}

}  // namespace

Result<void> write_as_snapshot(persist::Vfs& vfs, const std::string& dir,
                               const AsState& as,
                               const AsSnapshotExtras& extras,
                               const persist::SnapshotInfo& info) {
  wire::Writer w;
  w.u16(kImageVersion);
  w.u32(as.aid);
  put_secrets(w, as.secrets);
  w.u64(as.epoch.current());

  // HostDb image. The count prefix is written from a first pass; the
  // stripe locks are shared, so a concurrent writer could skew a single
  // pass's count (snapshots are taken from the coordinator's thread with
  // mutations quiesced per group commit, but stay honest anyway).
  std::vector<HostRecord> hosts;
  hosts.reserve(as.host_db.size());
  as.host_db.for_each([&](const HostRecord& rec) { hosts.push_back(rec); });
  w.u64(hosts.size());
  for (const HostRecord& rec : hosts) {
    w.u32(rec.hid);
    w.u32(rec.subscriber_id);
    w.raw(ByteSpan(rec.keys.enc.data(), rec.keys.enc.size()));
    w.raw(ByteSpan(rec.keys.mac.data(), rec.keys.mac.size()));
    w.raw(ByteSpan(rec.host_pub.data(), rec.host_pub.size()));
  }

  std::vector<std::pair<EphId, ExpTime>> ephids;
  as.revoked.for_each_ephid(
      [&](const EphId& e, ExpTime exp) { ephids.emplace_back(e, exp); });
  w.u64(ephids.size());
  for (const auto& [e, exp] : ephids) {
    w.raw(ByteSpan(e.bytes.data(), e.bytes.size()));
    w.u32(exp);
  }

  struct RevHost {
    Hid hid;
    std::uint32_t revocations;
    bool hid_revoked;
  };
  std::vector<RevHost> rev_hosts;
  as.revoked.for_each_host([&](Hid hid, std::uint32_t n, bool hr) {
    rev_hosts.push_back({hid, n, hr});
  });
  w.u64(rev_hosts.size());
  for (const RevHost& h : rev_hosts) {
    w.u32(h.hid);
    w.u32(h.revocations);
    w.u8(h.hid_revoked ? 1 : 0);
  }

  w.u64(extras.issued.size());
  for (const IssuedEphIdMeta& m : extras.issued) {
    w.raw(ByteSpan(m.ephid.bytes.data(), m.ephid.bytes.size()));
    w.u32(m.exp_time);
    w.u32(m.hid);
  }

  w.u64(extras.blocked_domains.size());
  for (const std::string& d : extras.blocked_domains) w.str(d);

  w.u64(extras.dns_records.size());
  for (const DnsRecord& rec : extras.dns_records) {
    const Bytes b = rec.serialize();
    w.var(span_of(b));
  }

  return persist::write_snapshot_file(
      vfs, snapshot_path(dir, info.generation), info, span_of(w.bytes()));
}

// ---------------------------------------------------------------------------
// Recovery

namespace {

struct RecoveringWorld {
  std::unique_ptr<AsState> as;
  std::uint64_t snapshot_epoch = 0;
  std::vector<IssuedEphIdMeta> issued;
  std::set<std::string> blocked;
  std::map<std::string, DnsRecord> dns;  // ordered → deterministic output
};

Result<RecoveringWorld> load_image(ByteSpan payload,
                                   std::uint32_t max_revocations_per_host,
                                   std::size_t shard_count) {
  wire::Reader r(payload);
  auto version = r.u16();
  if (!version || *version != kImageVersion)
    return Result<RecoveringWorld>(Errc::malformed, "snapshot image version");
  auto aid = r.u32();
  if (!aid) return Result<RecoveringWorld>(Errc::malformed, "snapshot aid");
  auto secrets = get_secrets(r);
  if (!secrets) return Result<RecoveringWorld>(secrets.error());
  auto epoch = r.u64();
  if (!epoch)
    return Result<RecoveringWorld>(Errc::malformed, "snapshot epoch");

  RecoveringWorld world;
  world.snapshot_epoch = *epoch;
  world.as = std::make_unique<AsState>(*aid, secrets.take(),
                                       max_revocations_per_host, shard_count);

  auto host_count = r.u64();
  if (!host_count)
    return Result<RecoveringWorld>(Errc::malformed, "snapshot host count");
  for (std::uint64_t i = 0; i < *host_count; ++i) {
    HostRecord rec;
    auto hid = r.u32();
    auto sub = r.u32();
    auto enc = r.arr<32>();
    auto mac = r.arr<16>();
    auto pub = r.arr<32>();
    if (!hid || !sub || !enc || !mac || !pub)
      return Result<RecoveringWorld>(Errc::malformed, "snapshot host record");
    rec.hid = *hid;
    rec.subscriber_id = *sub;
    rec.keys.enc = *enc;
    rec.keys.mac = *mac;
    rec.host_pub = *pub;
    world.as->host_db.restore(std::move(rec));
  }

  auto ephid_count = r.u64();
  if (!ephid_count)
    return Result<RecoveringWorld>(Errc::malformed, "snapshot ephid count");
  for (std::uint64_t i = 0; i < *ephid_count; ++i) {
    auto e = r.arr<16>();
    auto exp = r.u32();
    if (!e || !exp)
      return Result<RecoveringWorld>(Errc::malformed, "snapshot ephid");
    EphId ephid;
    ephid.bytes = *e;
    world.as->revoked.restore_ephid(ephid, *exp);
  }

  auto rev_host_count = r.u64();
  if (!rev_host_count)
    return Result<RecoveringWorld>(Errc::malformed, "snapshot rev hosts");
  for (std::uint64_t i = 0; i < *rev_host_count; ++i) {
    auto hid = r.u32();
    auto n = r.u32();
    auto flag = r.u8();
    if (!hid || !n || !flag)
      return Result<RecoveringWorld>(Errc::malformed, "snapshot rev host");
    world.as->revoked.restore_host(*hid, *n, *flag != 0);
  }

  auto issued_count = r.u64();
  if (!issued_count)
    return Result<RecoveringWorld>(Errc::malformed, "snapshot issued count");
  for (std::uint64_t i = 0; i < *issued_count; ++i) {
    auto e = r.arr<16>();
    auto exp = r.u32();
    auto hid = r.u32();
    if (!e || !exp || !hid)
      return Result<RecoveringWorld>(Errc::malformed, "snapshot issued");
    IssuedEphIdMeta m;
    m.ephid.bytes = *e;
    m.exp_time = *exp;
    m.hid = *hid;
    world.issued.push_back(m);
  }

  auto blocked_count = r.u64();
  if (!blocked_count)
    return Result<RecoveringWorld>(Errc::malformed, "snapshot blocked count");
  for (std::uint64_t i = 0; i < *blocked_count; ++i) {
    auto d = r.str();
    if (!d)
      return Result<RecoveringWorld>(Errc::malformed, "snapshot blocked");
    world.blocked.insert(d.take());
  }

  auto dns_count = r.u64();
  if (!dns_count)
    return Result<RecoveringWorld>(Errc::malformed, "snapshot dns count");
  for (std::uint64_t i = 0; i < *dns_count; ++i) {
    auto raw = r.var();
    if (!raw)
      return Result<RecoveringWorld>(Errc::malformed, "snapshot dns record");
    wire::Reader rr(*raw);
    auto rec = DnsRecord::parse(rr);
    if (!rec)
      return Result<RecoveringWorld>(Errc::malformed, "snapshot dns parse");
    DnsRecord d = rec.take();
    world.dns[d.name] = std::move(d);
  }
  return Result<RecoveringWorld>(std::move(world));
}

/// Applies one CRC-valid journal record to the recovering world.
/// Returns false when the payload is malformed (skipped, counted).
bool apply_record(RecoveringWorld& world, std::uint8_t type, ByteSpan payload) {
  wire::Reader r(payload);
  switch (static_cast<PersistRecordType>(type)) {
    case PersistRecordType::host_upsert: {
      auto hid = r.u32();
      auto sub = r.u32();
      auto enc = r.arr<32>();
      auto mac = r.arr<16>();
      auto pub = r.arr<32>();
      if (!hid || !sub || !enc || !mac || !pub) return false;
      HostRecord rec;
      rec.hid = *hid;
      rec.subscriber_id = *sub;
      rec.keys.enc = *enc;
      rec.keys.mac = *mac;
      rec.host_pub = *pub;
      world.as->host_db.restore(std::move(rec));
      return true;
    }
    case PersistRecordType::host_erase: {
      auto hid = r.u32();
      if (!hid) return false;
      world.as->host_db.restore_erase(*hid);
      return true;
    }
    case PersistRecordType::revoke_ephid: {
      auto e = r.arr<16>();
      auto exp = r.u32();
      auto hid = r.u32();
      if (!e || !exp || !hid) return false;
      EphId ephid;
      ephid.bytes = *e;
      // The normal path: replay IS a re-application of the original
      // mutation, escalation counters included. The epoch bumps it does
      // are invisible — no worker observes the state until recovery
      // finishes with the single advance_to below.
      world.as->revoked.revoke_ephid(ephid, *exp, *hid);
      return true;
    }
    case PersistRecordType::revoke_hid: {
      auto hid = r.u32();
      if (!hid) return false;
      world.as->revoked.revoke_hid(*hid);
      return true;
    }
    case PersistRecordType::ephid_issued: {
      auto e = r.arr<16>();
      auto exp = r.u32();
      auto hid = r.u32();
      if (!e || !exp || !hid) return false;
      IssuedEphIdMeta m;
      m.ephid.bytes = *e;
      m.exp_time = *exp;
      m.hid = *hid;
      world.issued.push_back(m);
      return true;
    }
    case PersistRecordType::domain_block: {
      auto d = r.str();
      if (!d) return false;
      world.blocked.insert(d.take());
      return true;
    }
    case PersistRecordType::dns_put: {
      auto rec = DnsRecord::parse(r);
      if (!rec) return false;
      DnsRecord d = rec.take();
      world.dns[d.name] = std::move(d);
      return true;
    }
    case PersistRecordType::dns_erase: {
      auto n = r.str();
      if (!n) return false;
      world.dns.erase(*n);
      return true;
    }
  }
  return false;  // unknown record type: skip, count
}

/// Parses "<stem>-<gen>.<ext>" names; returns generations ascending.
std::vector<std::uint64_t> generations(const std::vector<std::string>& names,
                                       std::string_view stem,
                                       std::string_view ext) {
  std::vector<std::uint64_t> gens;
  for (const std::string& n : names) {
    if (n.size() <= stem.size() + 1 + ext.size()) continue;
    if (n.compare(0, stem.size(), stem) != 0 || n[stem.size()] != '-')
      continue;
    if (n.compare(n.size() - ext.size(), ext.size(), ext) != 0) continue;
    const std::string digits =
        n.substr(stem.size() + 1, n.size() - stem.size() - 1 - ext.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    gens.push_back(std::stoull(digits));
  }
  std::sort(gens.begin(), gens.end());
  gens.erase(std::unique(gens.begin(), gens.end()), gens.end());
  return gens;
}

}  // namespace

Result<AsStateRecovery> AsState::recover(persist::Vfs& vfs,
                                         const std::string& dir,
                                         std::uint32_t max_revocations_per_host,
                                         std::size_t shard_count) {
  const std::vector<std::string> names = vfs.list(dir);
  const std::vector<std::uint64_t> snap_gens =
      generations(names, "snapshot", ".snap");
  const std::vector<std::uint64_t> journal_gens =
      generations(names, "journal", ".log");

  AsStateRecovery out;
  RecoveringWorld world;
  bool loaded = false;
  for (auto it = snap_gens.rbegin(); it != snap_gens.rend(); ++it) {
    auto snap = persist::read_snapshot_file(vfs, snapshot_path(dir, *it));
    if (!snap) {
      ++out.snapshots_skipped;
      continue;
    }
    auto image = load_image(ByteSpan(snap->payload.data(),
                                     snap->payload.size()),
                            max_revocations_per_host, shard_count);
    if (!image) {
      ++out.snapshots_skipped;
      continue;
    }
    world = image.take();
    out.snapshot_generation = *it;
    loaded = true;
    break;
  }
  if (!loaded)
    return Result<AsStateRecovery>(Errc::not_found,
                                   "no loadable snapshot generation");

  // Replay every journal from the chosen generation on, oldest first.
  // Journals older than the snapshot are already folded into it; the
  // chosen generation's journal holds the suffix written after it; later
  // generations exist when a newer snapshot was corrupt — their journals
  // continue the record stream without overlap (rotation happens exactly
  // at snapshot publication).
  for (std::uint64_t gen : journal_gens) {
    if (gen < out.snapshot_generation) continue;
    const persist::ReplayResult rr = persist::replay_journal_file(
        vfs, journal_path(dir, gen), [&](std::uint8_t type, ByteSpan payload) {
          if (apply_record(world, type, payload))
            ++out.journal_records_replayed;
          else
            ++out.records_malformed;
        });
    out.journal_bytes_discarded += rr.bytes_discarded;
  }

  // The one-bump contract: restored state was installed through
  // non-bumping paths (or on a world no worker can see yet); advance the
  // epoch once past everything so every per-worker FlowCache entry
  // stamped before the crash is invalid after it.
  out.snapshot_epoch = world.snapshot_epoch;
  world.as->epoch.advance_to(
      std::max(world.snapshot_epoch, world.as->epoch.current()) + 1);

  out.as = std::move(world.as);
  out.issued = std::move(world.issued);
  out.blocked_domains.assign(world.blocked.begin(), world.blocked.end());
  out.dns_records.reserve(world.dns.size());
  for (auto& [name, rec] : world.dns) out.dns_records.push_back(std::move(rec));
  return Result<AsStateRecovery>(std::move(out));
}

}  // namespace apna::core

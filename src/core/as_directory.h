// AS public-key directory — the RPKI stand-in (§IV-A assumption:
// "Participating parties can retrieve and verify the public keys of ASes.
// For example, a scheme such as RPKI can be used").
//
// Models a pre-verified RPKI snapshot as an in-memory AID → keys map shared
// (by reference) with every entity that validates certificates.
#pragma once

#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

#include "core/ids.h"
#include "crypto/ed25519.h"
#include "crypto/x25519.h"

namespace apna::core {

struct AsPublicInfo {
  Aid aid = 0;
  crypto::Ed25519PublicKey sign_pub{};  // verifies certificates/bootstrap
  crypto::X25519PublicKey dh_pub{};     // host bootstrap key exchange
  /// Published accountability-agent endpoint, so victims of unsolicited
  /// traffic (who never saw the sender's certificate) can still address a
  /// shutoff request to the source AS (§IV-E).
  EphId aa_ephid;
};

class AsDirectory {
 public:
  void register_as(const AsPublicInfo& info) {
    std::unique_lock lock(mu_);
    map_[info.aid] = info;
  }

  std::optional<AsPublicInfo> lookup(Aid aid) const {
    std::shared_lock lock(mu_);
    auto it = map_.find(aid);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t size() const {
    std::shared_lock lock(mu_);
    return map_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<Aid, AsPublicInfo> map_;
};

}  // namespace apna::core

// Flow-hash steering — which processing context owns a flow.
//
// The chunk-claiming dispatch the ForwardingPool started with splits a
// single flow's packets across whichever workers happen to claim its
// chunks, so the flow's verified verdict (core/flow_cache.h) gets
// re-derived and duplicated in several per-worker caches — wasted crypto
// and wasted capacity. Steering fixes the affinity: every packet of a flow
// hashes to ONE worker, that worker's FlowCache stays hot, and
// ForwardingPool::flow_cache_stats()'s cross_worker_duplicates counter
// stays at zero (the software analogue of NIC RSS keeping a TCP flow on
// one core).
//
// Bit discipline: an EphID is pseudorandom ciphertext, so its first 8
// bytes (EphIdHash, core/ids.h) serve as the flow fingerprint everywhere.
// FlowCache indexes its buckets with the LOW bits of that fingerprint;
// steering therefore uses the HIGH 32 bits — otherwise a power-of-two
// worker count would confine each worker's cache to 1/workers of its
// buckets (every EphID a worker sees would share its low bits).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/ids.h"

namespace apna::core {

/// The steering half of the flow fingerprint (disjoint bits from the
/// FlowCache bucket index; see the header comment).
inline std::uint32_t flow_steer_hash(ByteSpan ephid16) {
  return static_cast<std::uint32_t>(load_le64(ephid16.data()) >> 32);
}

/// Worker index for a flow in a pool of `workers` contexts (workers >= 1).
inline std::size_t steer_worker(ByteSpan ephid16, std::size_t workers) {
  return flow_steer_hash(ephid16) % workers;
}

}  // namespace apna::core

// The shared state of one AS's infrastructure.
//
// Every infrastructure entity of an AS (RS, MS, AA, border routers) holds kA
// and the host/revocation databases (Fig 2: "the RS sends the host
// information to infrastructure entities in the AS; the entities store the
// information in their database"). In this in-process model they share one
// AsState by reference, which faithfully models the synchronized state while
// the message flows that synchronize it are still exercised and counted.
#pragma once

#include "core/ephid.h"
#include "core/host_db.h"
#include "core/ids.h"
#include "core/keys.h"
#include "core/revocation.h"
#include "crypto/modes.h"

namespace apna::core {

struct AsState {
  Aid aid;
  AsSecrets secrets;
  EphIdCodec codec;          // kA' / kA'' derived from kA (§V-A1)
  crypto::AesCmac infra_mac; // kAS: authenticates AA→BR revocation (Fig 5)
  HostDb host_db;            // host_info
  RevocationList revoked;    // revoked_ids

  /// `max_revocations_per_host` is the §VIII-G2 escalation threshold.
  AsState(Aid aid_, AsSecrets secrets_,
          std::uint32_t max_revocations_per_host = 16)
      : aid(aid_),
        secrets(std::move(secrets_)),
        codec(ByteSpan(secrets.ka.data(), secrets.ka.size())),
        infra_mac(ByteSpan(secrets.ka_infra.data(), secrets.ka_infra.size())),
        revoked(max_revocations_per_host) {}

  AsState(const AsState&) = delete;
  AsState& operator=(const AsState&) = delete;
};

}  // namespace apna::core

// The shared — and now sharded — state of one AS's infrastructure.
//
// Every infrastructure entity of an AS (RS, MS, AA, border routers) holds kA
// and the host/revocation databases (Fig 2: "the RS sends the host
// information to infrastructure entities in the AS; the entities store the
// information in their database"). In this in-process model they share one
// AsState by reference, which faithfully models the synchronized state while
// the message flows that synchronize it are still exercised and counted.
//
// AsState is the "ShardedAsState" of the scaling roadmap: every mutable
// member is safe for concurrent use from M router workers —
//  * codec / infra_mac are immutable after construction (shareable, §V-A1);
//  * host_db and revoked are lock-striped into `shard_count` stripes keyed
//    by HID / EphID hash (core/sharded.h), so the Fig 4 per-packet lookups
//    (revocation check, host_info check) never contend on a global lock
//    while the RS enrolls hosts and the AA revokes EphIDs concurrently.
// See ARCHITECTURE.md, "Concurrency model".
#pragma once

#include <string>

#include "core/ephid.h"
#include "core/host_db.h"
#include "core/ids.h"
#include "core/keys.h"
#include "core/revocation.h"
#include "core/sharded.h"
#include "crypto/modes.h"

namespace apna::persist {
class Vfs;
}

namespace apna::core {

struct AsStateRecovery;  // core/as_persist.h

struct AsState {
  Aid aid;
  AsSecrets secrets;
  EphIdCodec codec;          // kA' / kA'' derived from kA (§V-A1)
  crypto::AesCmac infra_mac; // kAS: authenticates AA→BR revocation (Fig 5)
  /// Verdict generation for the per-worker flow caches: revocations and
  /// host de-registration bump it; workers stamp cached verdicts with it
  /// (core/flow_cache.h — "Epoch invalidation" in ARCHITECTURE.md).
  VerdictEpoch epoch;
  HostDb host_db;            // host_info (lock-striped by HID)
  RevocationList revoked;    // revoked_ids (lock-striped by EphID/HID)

  /// `max_revocations_per_host` is the §VIII-G2 escalation threshold;
  /// `shard_count` stripes the host/revocation tables (rounded to a power
  /// of two).
  AsState(Aid aid_, AsSecrets secrets_,
          std::uint32_t max_revocations_per_host = 16,
          std::size_t shard_count = kDefaultShardCount)
      : aid(aid_),
        secrets(std::move(secrets_)),
        codec(ByteSpan(secrets.ka.data(), secrets.ka.size())),
        infra_mac(ByteSpan(secrets.ka_infra.data(), secrets.ka_infra.size())),
        host_db(shard_count, &epoch),
        revoked(max_revocations_per_host, shard_count, &epoch) {}

  AsState(const AsState&) = delete;
  AsState& operator=(const AsState&) = delete;

  /// Crash recovery (see core/as_persist.h and ARCHITECTURE.md
  /// "Durability"): loads the newest valid snapshot under `dir`, falls
  /// back a generation when a snapshot is corrupt, replays the journal
  /// suffix up to the last valid frame (torn tails truncate, never
  /// crash), then advances the verdict epoch ONCE so every worker
  /// FlowCache invalidates. Returns the rebuilt state plus the
  /// recovered metadata the layers above core must re-install (DNS zone
  /// records, domain blocks, issued-EphID metadata).
  static Result<AsStateRecovery> recover(
      persist::Vfs& vfs, const std::string& dir,
      std::uint32_t max_revocations_per_host = 16,
      std::size_t shard_count = kDefaultShardCount);
};

}  // namespace apna::core

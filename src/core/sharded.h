// Lock-striped (sharded) hash maps — the concurrency backbone of the
// data-plane fast path.
//
// The paper's design choice 3 keeps forwarding devices on symmetric crypto
// so the data plane can run at line rate (§IV, §V-B); the matching software
// requirement is that per-packet state lookups never serialize on one lock.
// ShardedMap splits a hash map into N power-of-two shards, each guarded by
// its own shared_mutex, keyed by the entry hash. M worker threads touching
// pseudorandom keys (EphIDs, HIDs) contend only when they land on the same
// stripe, so throughput scales with cores instead of flatlining on a global
// mutex.
//
// Concurrency contract (see ARCHITECTURE.md "Concurrency model"):
//  * every member function is safe to call from any thread;
//  * find() returns a COPY of the value taken under the shard lock — holding
//    references into the map across calls is not supported;
//  * update() runs the caller's functor under the shard's exclusive lock, so
//    functors must be short and must not call back into the same map.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace apna::core {

/// Monotone per-AS generation counter — the invalidation channel between
/// the striped tables and the per-worker verified-flow caches
/// (core/flow_cache.h). Every mutation that can turn a cached EphID pass
/// into a drop (revocation, host de-registration or key replacement) bumps
/// the generation; cache entries record the generation they were verified
/// under, so one atomic increment invalidates every stale verdict in every
/// worker without touching the workers. Starts at 1: generation 0 is the
/// flow caches' "empty slot" marker.
class VerdictEpoch {
 public:
  std::uint64_t current() const { return gen_.load(std::memory_order_acquire); }

  /// Called AFTER the table mutation is visible (the tables are internally
  /// locked, so a worker that misses on the new generation re-reads them
  /// and observes the mutation).
  void bump() { gen_.fetch_add(1, std::memory_order_release); }

  /// Recovery-only: raises the generation to at least `gen` (monotone —
  /// never moves backwards). AsState::recover uses this to implement the
  /// one-bump contract: restored state is installed through non-bumping
  /// paths, then the epoch advances once past the snapshot's value so
  /// every worker FlowCache invalidates exactly once.
  void advance_to(std::uint64_t gen) {
    std::uint64_t cur = gen_.load(std::memory_order_relaxed);
    while (cur < gen &&
           !gen_.compare_exchange_weak(cur, gen, std::memory_order_release,
                                       std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<std::uint64_t> gen_{1};
};

/// Default stripe count for per-AS forwarding state. 16 stripes keep
/// worst-case contention below ~1/16 of lookups for up to ~16 workers while
/// costing only 16 mutexes per table.
constexpr std::size_t kDefaultShardCount = 16;

/// Smallest power of two >= n (shard indexing uses `hash & mask`).
constexpr std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

template <class Key, class Value, class Hash = std::hash<Key>>
class ShardedMap {
 public:
  explicit ShardedMap(std::size_t shard_count = kDefaultShardCount)
      : count_(round_up_pow2(shard_count == 0 ? 1 : shard_count)),
        mask_(count_ - 1),
        shards_(std::make_unique<Shard[]>(count_)) {}

  /// Copy-out lookup under the shard's shared lock.
  std::optional<Value> find(const Key& key) const {
    const Shard& s = shard(key);
    std::shared_lock lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return std::nullopt;
    return it->second;
  }

  bool contains(const Key& key) const {
    const Shard& s = shard(key);
    std::shared_lock lock(s.mu);
    return s.map.contains(key);
  }

  /// Best-effort prefetch of the stripe `key` hashes to (mutex word + map
  /// header share the stripe's cache lines). The burst pipelines issue this
  /// a few packets ahead of the actual lookup.
  void prefetch(const Key& key) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&shard(key));
#endif
  }

  /// Returns true when the key was newly inserted, false when an existing
  /// entry was replaced (callers use the distinction to decide whether the
  /// mutation can invalidate previously cached verdicts).
  bool insert_or_assign(const Key& key, Value value) {
    Shard& s = shard(key);
    std::unique_lock lock(s.mu);
    return s.map.insert_or_assign(key, std::move(value)).second;
  }

  bool erase(const Key& key) {
    Shard& s = shard(key);
    std::unique_lock lock(s.mu);
    return s.map.erase(key) != 0;
  }

  /// Runs `fn(value&)` under the shard's exclusive lock, default-inserting
  /// the entry via `make()` when absent. Returns fn's result. This is the
  /// read-modify-write primitive (replay-window accept, revocation counts).
  template <class MakeFn, class Fn>
  auto update(const Key& key, MakeFn make, Fn fn) {
    Shard& s = shard(key);
    std::unique_lock lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) it = s.map.emplace(key, make()).first;
    return fn(it->second);
  }

  /// Erases every entry for which `pred(key, value)` is true, one shard at a
  /// time (writers on other shards proceed meanwhile). Returns erase count.
  template <class Pred>
  std::size_t erase_if(Pred pred) {
    std::size_t erased = 0;
    for (std::size_t i = 0; i < count_; ++i) {
      Shard& s = shards_[i];
      std::unique_lock lock(s.mu);
      for (auto it = s.map.begin(); it != s.map.end();) {
        if (pred(it->first, it->second)) {
          it = s.map.erase(it);
          ++erased;
        } else {
          ++it;
        }
      }
    }
    return erased;
  }

  /// Visits every entry as `fn(key, value)` under each shard's shared
  /// lock, one stripe at a time (writers on other stripes proceed
  /// meanwhile). Snapshot iteration for the durability layer; `fn` must
  /// not call back into the same map.
  template <class Fn>
  void for_each(Fn fn) const {
    for (std::size_t i = 0; i < count_; ++i) {
      const Shard& s = shards_[i];
      std::shared_lock lock(s.mu);
      for (const auto& [k, v] : s.map) fn(k, v);
    }
  }

  /// Total entry count (sums shard sizes; a racing writer may make the
  /// result stale by the time it returns, like any concurrent counter).
  std::size_t size() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < count_; ++i) {
      std::shared_lock lock(shards_[i].mu);
      n += shards_[i].map.size();
    }
    return n;
  }

  std::size_t shard_count() const { return count_; }

  /// Per-stripe occupancy and approximate footprint — the raw input for
  /// memory accounting (HostDb::memory_stats, RevocationList::memory_bytes)
  /// and for stripe-balance diagnostics in the scenario engine. `bytes` is
  /// an estimate: unordered_map's node and bucket overheads are not
  /// observable portably, so each entry is costed at its pair size plus
  /// kNodeOverheadBytes and each bucket at one pointer. An estimate with a
  /// stated model beats a guess with none.
  struct StripeStats {
    std::size_t entries = 0;
    std::size_t buckets = 0;
    std::size_t bytes = 0;
  };

  /// Modeled per-node overhead: the forward pointer of the bucket chain
  /// plus one allocator header per node (libstdc++ node = ptr + hash cache;
  /// 24 covers the common ABIs without flattering any of them).
  static constexpr std::size_t kNodeOverheadBytes = 24;

  StripeStats stripe_stats(std::size_t i) const {
    const Shard& s = shards_[i];
    std::shared_lock lock(s.mu);
    StripeStats st;
    st.entries = s.map.size();
    st.buckets = s.map.bucket_count();
    st.bytes = sizeof(Shard) +
               st.entries * (sizeof(std::pair<const Key, Value>) +
                             kNodeOverheadBytes) +
               st.buckets * sizeof(void*);
    return st;
  }

  std::vector<StripeStats> stripe_stats() const {
    std::vector<StripeStats> all(count_);
    for (std::size_t i = 0; i < count_; ++i) all[i] = stripe_stats(i);
    return all;
  }

  /// Approximate total footprint across all stripes (sum of stripe bytes).
  std::size_t approx_memory_bytes() const {
    std::size_t total = sizeof(ShardedMap);
    for (std::size_t i = 0; i < count_; ++i) total += stripe_stats(i).bytes;
    return total;
  }

 private:
  /// Cache-line aligned so two stripes never false-share.
  struct alignas(64) Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<Key, Value, Hash> map;
  };

  Shard& shard(const Key& key) { return shards_[Hash{}(key)&mask_]; }
  const Shard& shard(const Key& key) const {
    return shards_[Hash{}(key)&mask_];
  }

  std::size_t count_;
  std::size_t mask_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace apna::core

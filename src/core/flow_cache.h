// Verified-flow cache — per-worker memoization of the Fig 4 EphID verdict.
//
// Design choice 3 (§IV-D3) keeps border routers on symmetric crypto so the
// data plane can run at line rate; this cache exploits the next property
// down: real traffic is flow-dominated, and after the first packet of a
// flow the EphID verdict is a pure function of (EphID, revocation state,
// clock). A verified entry therefore lets every later packet of the flow
// skip the EphID decrypt+auth (2 AES passes + CBC-MAC) and both striped
// table lookups. The per-packet source MAC is NEVER skipped — it is
// per-packet by design (§IV-D2), so an entry carries a borrowed pointer to
// the host's pre-scheduled kHA CMAC instead.
//
// Concurrency model: one FlowCache per worker thread, no locks, no
// cross-thread sharing (router::ForwardingPool gives each slot its own).
// Coherence with the shared AS state is EPOCH-BASED: AsState owns a
// VerdictEpoch whose generation is bumped by every mutation that can turn a
// cached pass into a drop (EphID/HID revocation, host de-registration or
// key replacement). Entries record the generation they were verified under;
// a probe whose entry generation differs from the current one is a miss, so
// a revocation invalidates every cached verdict in every worker instantly —
// without touching the workers. Expiry needs no epoch: entries carry the
// EphID's decrypted ExpTime and the probe's caller compares it against the
// burst clock, reproducing the uncached Errc::expired verdict exactly.
//
// Layout: open addressing, kWays-associative buckets. The bucket's tags
// (8-byte EphID fingerprints) are contiguous — one cache line covers a
// whole bucket's tags — so the common miss costs a single line fill and a
// hit adds exactly one entry line. Tag collisions are resolved by a full
// 16-byte EphID compare on the entry: a forged EphID sharing a fingerprint
// can never borrow another flow's verdict.
#pragma once

#include <cstdint>
#include <memory>

#include "core/ids.h"
#include "core/sharded.h"
#include "crypto/modes.h"

namespace apna::core {

/// Fixed-capacity, lock-free (single-owner) EphID → verdict cache.
class FlowCache {
 public:
  static constexpr std::size_t kWays = 4;

  /// One verified EphID. `cmac` shares ownership of the host's
  /// pre-scheduled packet-MAC key so a concurrent de-registration can
  /// never free a schedule while a hit still points at it (the entry
  /// itself is already unusable then — the erase bumped the epoch).
  struct Entry {
    EphId ephid;
    Hid hid = 0;
    ExpTime exp_time = 0;
    std::uint64_t gen = 0;  // 0 = empty slot
    std::shared_ptr<const crypto::AesCmac> cmac;
  };

  struct Stats {
    std::uint64_t hits = 0;        // generation-valid fingerprint+EphID match
    std::uint64_t misses = 0;      // no usable entry (includes stale/empty)
    std::uint64_t stale_gen = 0;   // of misses: entry existed, epoch moved on
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;   // insertion displaced a live entry
    /// EphIDs currently cached by MORE than one worker (each extra copy
    /// counts one). A single cache always reports 0 — the field is filled
    /// by router::ForwardingPool::flow_cache_stats() on the merged view,
    /// where duplicates measure steering quality: chunk-claiming dispatch
    /// duplicates hot flows across workers, flow-hash steering
    /// (core/flow_steer.h) drives this to zero.
    std::uint64_t cross_worker_duplicates = 0;

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }

    Stats& operator+=(const Stats& o) {
      hits += o.hits;
      misses += o.misses;
      stale_gen += o.stale_gen;
      insertions += o.insertions;
      evictions += o.evictions;
      cross_worker_duplicates += o.cross_worker_duplicates;
      return *this;
    }

    /// Subtracts an earlier snapshot of the same monotone counters (per-
    /// phase deltas in the scenario engine).
    Stats& operator-=(const Stats& o) {
      hits -= o.hits;
      misses -= o.misses;
      stale_gen -= o.stale_gen;
      insertions -= o.insertions;
      evictions -= o.evictions;
      cross_worker_duplicates -= o.cross_worker_duplicates;
      return *this;
    }
  };

  /// `capacity` is rounded up to a power of two, minimum one bucket.
  explicit FlowCache(std::size_t capacity = 4096)
      : buckets_(round_up_pow2(
            (capacity < kWays ? kWays : capacity) / kWays)),
        mask_(buckets_ - 1),
        tags_(std::make_unique<std::uint64_t[]>(buckets_ * kWays)),
        entries_(std::make_unique<Entry[]>(buckets_ * kWays)) {
    for (std::size_t i = 0; i < buckets_ * kWays; ++i) tags_[i] = 0;
  }

  /// Looks up `ephid` under the caller's observed generation. Returns the
  /// entry on a generation-valid match (the caller still compares
  /// `exp_time` against its clock — an expired entry reproduces the
  /// uncached Errc::expired verdict without re-running the crypto), or
  /// nullptr on a miss. The pointer is valid until the next insert().
  const Entry* find(const EphId& ephid, std::uint64_t gen) {
    const std::uint64_t tag = fingerprint(ephid);
    const std::size_t base = (tag & mask_) * kWays;
    for (std::size_t w = 0; w < kWays; ++w) {
      if (tags_[base + w] != tag) continue;
      const Entry& e = entries_[base + w];
      if (e.gen == gen && e.ephid == ephid) {
        ++stats_.hits;
        return &e;
      }
      if (e.gen != 0 && e.gen != gen) ++stats_.stale_gen;
    }
    ++stats_.misses;
    return nullptr;
  }

  /// Caches a freshly verified verdict under generation `gen` (the value
  /// the caller read BEFORE running the checks, so a racing epoch bump
  /// leaves the entry conservatively stale). Victim order: same EphID >
  /// empty > stale generation > earliest expiry.
  void insert(const EphId& ephid, Hid hid, ExpTime exp_time,
              std::uint64_t gen,
              std::shared_ptr<const crypto::AesCmac> cmac) {
    const std::uint64_t tag = fingerprint(ephid);
    const std::size_t base = (tag & mask_) * kWays;
    std::size_t victim = base;
    int victim_rank = 3;  // 0 same-key, 1 empty, 2 stale, 3 live
    for (std::size_t w = 0; w < kWays; ++w) {
      const Entry& e = entries_[base + w];
      int rank;
      if (tags_[base + w] == tag && e.gen != 0 && e.ephid == ephid) {
        rank = 0;
      } else if (e.gen == 0) {
        rank = 1;
      } else if (e.gen != gen) {
        rank = 2;
      } else {
        rank = 3;
      }
      if (rank < victim_rank ||
          (rank == 3 && victim_rank == 3 &&
           e.exp_time < entries_[victim].exp_time)) {
        victim = base + w;
        victim_rank = rank;
        if (rank == 0) break;
      }
    }
    if (victim_rank == 3) ++stats_.evictions;
    Entry& e = entries_[victim];
    e.ephid = ephid;
    e.hid = hid;
    e.exp_time = exp_time;
    e.gen = gen;
    e.cmac = std::move(cmac);
    tags_[victim] = tag;
    ++stats_.insertions;
  }

  /// Prefetches the bucket `ephid` would probe (tag line + first entry).
  void prefetch(const EphId& ephid) const {
    const std::size_t base = (fingerprint(ephid) & mask_) * kWays;
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&tags_[base]);
    __builtin_prefetch(&entries_[base]);
#endif
  }

  /// Drops every entry (tests; a size change would need a new cache).
  void clear() {
    for (std::size_t i = 0; i < buckets_ * kWays; ++i) {
      tags_[i] = 0;
      entries_[i] = Entry{};
    }
  }

  /// Visits every occupied entry (any generation). Stat readers and tests;
  /// not a fast path.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (std::size_t i = 0; i < buckets_ * kWays; ++i)
      if (entries_[i].gen != 0) fn(entries_[i]);
  }

  std::size_t capacity() const { return buckets_ * kWays; }
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

 private:
  /// EphIDs are pseudorandom (ciphertext ‖ IV ‖ tag), so EphIdHash's fold
  /// of the first 8 bytes serves as both bucket hash (low bits) and
  /// in-bucket tag (all bits) — one shared hashing decision, one site
  /// (core/ids.h). Tag collisions are harmless: hits full-compare the
  /// EphID.
  static std::uint64_t fingerprint(const EphId& e) { return EphIdHash{}(e); }

  std::size_t buckets_;
  std::size_t mask_;
  std::unique_ptr<std::uint64_t[]> tags_;  // bucket-contiguous fingerprints
  std::unique_ptr<Entry[]> entries_;
  Stats stats_;
};

}  // namespace apna::core

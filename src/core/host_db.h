// host_info — the per-AS database mapping HID → host state (Fig 2/3/4).
//
// Populated by the Registry Service at bootstrap and consulted by every
// infrastructure entity: the MS (request authentication), border routers
// (per-packet MAC verification) and the accountability agent (shutoff
// validation). The paper implements it as "a hashtable using HID as the
// key" (§V-A2); an Internet-scale AS holds MILLIONS of registered hosts
// (§VIII sizes the load against a national-ISP peak), so the layout here is
// built for footprint first:
//
//  * Records are COMPACT — a fixed 88-byte POD (CompactHostRecord: HID,
//    subscriber, kHA enc+mac halves, K+_H) stored in per-stripe slab arenas
//    (kSlabRecords records per allocation, erased slots recycled through a
//    free list). No per-record heap node, no per-record allocator overhead.
//  * The HID index is open addressing (linear probing over 8-byte
//    {hid, slot} entries, tombstone deletion, rehash at 3/4 load) — ~11-21
//    bytes per host instead of an unordered_map node per host.
//  * The pre-scheduled per-host packet-MAC key (the AES-128 key schedule a
//    border router needs once per flow, 224+ bytes) is NOT stored per host.
//    A bounded set-associative schedule cache holds the schedules of the
//    ACTIVE hosts; find() schedules lazily on first use. A cached schedule
//    is validated by comparing the record's current kHA-mac bytes — a key
//    replacement or HID reuse can therefore never serve a stale schedule,
//    with no invalidation hook and no race window.
//
// Net: ~105 B/host amortized at 10⁶ hosts (memory_stats() reports the real
// figure; the scenario engine asserts ≤ 200 B/host), versus ~500 B/host for
// the previous node-per-record ShardedMap<Hid, HostRecord> storage.
//
// Concurrency contract (unchanged from the ShardedMap era — see
// ARCHITECTURE.md "Concurrency model"): every member is safe from any
// thread; the table is lock-striped by HID hash so M router workers doing
// the Fig 4 "HID ∈ host_info" lookup never serialize on a global lock while
// the RS keeps enrolling hosts; find() returns a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "core/ids.h"
#include "core/keys.h"
#include "core/sharded.h"
#include "crypto/modes.h"

namespace apna::core {

struct HostRecord {
  Hid hid = 0;
  HostAsKeys keys;                    // kHA (enc + mac halves)
  crypto::X25519PublicKey host_pub{}; // K+_H learned at authentication
  std::uint32_t subscriber_id = 0;    // the authenticated customer identity
  /// Pre-scheduled CMAC under keys.mac — the border routers verify one MAC
  /// per packet (Fig 4), so the key schedule is amortized. Served from the
  /// HostDb's bounded schedule cache (scheduled lazily on first find());
  /// immutable and shared_ptr-held, so a router worker's copy of the record
  /// keeps the schedule alive even if the RS replaces the entry — or the
  /// cache evicts it — mid-verification.
  std::shared_ptr<const crypto::AesCmac> cmac;
};

class HostDb {
 public:
  /// Bounded total capacity of the lazy kHA-CMAC schedule cache (entries,
  /// split evenly across stripes). Sized for the ACTIVE host set — an idle
  /// registered host costs no schedule. 8192 schedules ≈ 2.3 MB, noise
  /// against 10⁶ compact records.
  static constexpr std::size_t kDefaultScheduleCacheEntries = 8192;

  /// What the database actually has allocated, by component. All figures
  /// are reserved bytes (slabs, table capacity), not live-entry sums — the
  /// honest denominator for a capacity-planning answer.
  struct MemoryStats {
    std::size_t hosts = 0;           // live records
    std::size_t record_bytes = 0;    // slab arenas (all reserved slots)
    std::size_t index_bytes = 0;     // open-addressing tables
    std::size_t schedule_bytes = 0;  // schedule cache slots + live schedules
    std::size_t fixed_bytes = 0;     // stripe headers and free lists

    std::size_t total() const {
      return record_bytes + index_bytes + schedule_bytes + fixed_bytes;
    }
    double bytes_per_host() const {
      return hosts == 0 ? 0.0
                        : static_cast<double>(total()) /
                              static_cast<double>(hosts);
    }
  };

  /// `epoch` (optional) is bumped on every mutation that can invalidate a
  /// previously verified flow-cache verdict: replacing an existing record
  /// (the pre-scheduled kHA may change) and erasing one. A brand-new HID
  /// never bumps — negative verdicts are never cached, so an insert cannot
  /// make a cached verdict wrong.
  explicit HostDb(std::size_t shard_count = kDefaultShardCount,
                  VerdictEpoch* epoch = nullptr,
                  std::size_t schedule_cache_entries =
                      kDefaultScheduleCacheEntries)
      : count_(round_up_pow2(shard_count == 0 ? 1 : shard_count)),
        mask_(count_ - 1),
        stripes_(std::make_unique<Stripe[]>(count_)),
        epoch_(epoch) {
    const std::size_t per_stripe =
        round_up_pow2(schedule_cache_entries / count_ < kSchedWays
                          ? kSchedWays
                          : schedule_cache_entries / count_);
    for (std::size_t i = 0; i < count_; ++i) {
      stripes_[i].sched.resize(per_stripe);
      stripes_[i].sched_rr.resize(per_stripe / kSchedWays, 0);
    }
  }

  /// Inserts or replaces the record for record.hid. A caller-supplied
  /// pre-scheduled cmac seeds the schedule cache (infrastructure identities
  /// pay the schedule once, up front); customer enrollment leaves it null
  /// and the schedule is built lazily on the first find().
  void upsert(HostRecord record) {
    Stripe& s = stripe(record.hid);
    bool replaced;
    {
      std::unique_lock lock(s.mu);
      replaced = s.put(record);
    }
    if (record.cmac) {
      std::lock_guard sched_lock(s.sched_mu);
      s.sched_put(record.hid, record.keys.mac, std::move(record.cmac));
    }
    if (replaced && epoch_) epoch_->bump();
  }

  /// Fig 4: "if HID ∉ host_info drop packet". Copies the compact record out
  /// under the stripe's shared lock, then attaches the (possibly lazily
  /// scheduled) packet-MAC key from the schedule cache.
  std::optional<HostRecord> find(Hid hid) const {
    const Stripe& s = stripe(hid);
    CompactHostRecord rec;
    {
      std::shared_lock lock(s.mu);
      const CompactHostRecord* p = s.get(hid);
      if (!p) return std::nullopt;
      rec = *p;
    }
    HostRecord out;
    out.hid = rec.hid;
    out.subscriber_id = rec.subscriber_id;
    out.keys.enc = rec.enc;
    out.keys.mac = rec.mac;
    out.host_pub = rec.host_pub;
    out.cmac = s.schedule_for(rec);
    return out;
  }

  bool contains(Hid hid) const {
    const Stripe& s = stripe(hid);
    std::shared_lock lock(s.mu);
    return s.get(hid) != nullptr;
  }

  /// Best-effort prefetch of the index line `hid` probes first. The burst
  /// pipelines issue this a few packets ahead of the actual lookup.
  void prefetch(Hid hid) const {
#if defined(__GNUC__) || defined(__clang__)
    const Stripe& s = stripe(hid);
    if (!s.index.empty())
      __builtin_prefetch(&s.index[index_bits(hid) & (s.index.size() - 1)]);
#endif
  }

  /// Removes a host entirely (HID revocation, §VIII-G2 / §VI-A identity
  /// minting: "if a host requests a new HID, the previous HID ... revoked").
  void erase(Hid hid) {
    Stripe& s = stripe(hid);
    bool erased;
    {
      std::unique_lock lock(s.mu);
      erased = s.remove(hid);
    }
    if (erased && epoch_) epoch_->bump();
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < count_; ++i) {
      std::shared_lock lock(stripes_[i].mu);
      n += stripes_[i].live;
    }
    return n;
  }

  /// Visits every live record as `fn(const HostRecord&)` under each
  /// stripe's shared lock (writers on other stripes proceed meanwhile).
  /// Snapshot iteration for the durability layer: the visited record
  /// carries the arena fields only — `cmac` is left null, exactly like a
  /// record persisted and re-loaded (schedules are derived state). `fn`
  /// must not call back into the same HostDb.
  template <class Fn>
  void for_each(Fn fn) const {
    for (std::size_t i = 0; i < count_; ++i) {
      const Stripe& s = stripes_[i];
      std::shared_lock lock(s.mu);
      for (const IndexEntry& e : s.index) {
        if (e.slot == kEmpty || e.slot == kTombstone) continue;
        const CompactHostRecord& rec = s.record(e.slot);
        HostRecord out;
        out.hid = rec.hid;
        out.subscriber_id = rec.subscriber_id;
        out.keys.enc = rec.enc;
        out.keys.mac = rec.mac;
        out.host_pub = rec.host_pub;
        fn(out);
      }
    }
  }

  /// Recovery-only upsert/erase that never bump the verdict epoch:
  /// AsState::recover installs the restored image through these, then
  /// advances the epoch ONCE (the one-bump contract — see
  /// ARCHITECTURE.md "Durability").
  void restore(HostRecord record) {
    Stripe& s = stripe(record.hid);
    std::unique_lock lock(s.mu);
    s.put(record);
  }
  void restore_erase(Hid hid) {
    Stripe& s = stripe(hid);
    std::unique_lock lock(s.mu);
    s.remove(hid);
  }

  /// Reserved-byte accounting, per component. Deterministic for a given
  /// operation sequence (slab and table growth depend only on the
  /// insert/erase history), so scenario JSONs can carry it verbatim.
  MemoryStats memory_stats() const {
    MemoryStats m;
    m.fixed_bytes = sizeof(HostDb) + count_ * sizeof(Stripe);
    for (std::size_t i = 0; i < count_; ++i) {
      const Stripe& s = stripes_[i];
      std::shared_lock lock(s.mu);
      m.hosts += s.live;
      m.record_bytes += s.slabs.size() * kSlabRecords * sizeof(CompactHostRecord);
      m.index_bytes += s.index.capacity() * sizeof(IndexEntry);
      m.fixed_bytes += s.free_slots.capacity() * sizeof(std::uint32_t);
      std::lock_guard sched_lock(s.sched_mu);
      m.schedule_bytes += s.sched.capacity() * sizeof(SchedSlot) +
                          s.sched_rr.capacity();
      for (const SchedSlot& slot : s.sched)
        if (slot.cmac)
          m.schedule_bytes += sizeof(crypto::AesCmac) + kSharedPtrCtrlBytes;
    }
    return m;
  }

  std::size_t memory_bytes() const { return memory_stats().total(); }

  std::size_t shard_count() const { return count_; }

 private:
  /// The arena-resident per-host state: everything the paper's host_info
  /// row needs, nothing per-host that can be derived or cached. 88 bytes.
  struct CompactHostRecord {
    Hid hid = 0;
    std::uint32_t subscriber_id = 0;
    std::array<std::uint8_t, 32> enc{};       // kHA AEAD half
    std::array<std::uint8_t, 16> mac{};       // kHA CMAC half
    crypto::X25519PublicKey host_pub{};       // K+_H
  };
  static_assert(sizeof(CompactHostRecord) == 88,
                "compact host record layout drifted");

  struct IndexEntry {
    Hid hid = 0;
    std::uint32_t slot = kEmpty;  // arena slot, or kEmpty / kTombstone
  };
  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr std::uint32_t kTombstone = 0xfffffffeu;
  static constexpr std::size_t kSlabRecords = 1024;  // 88 KiB per slab
  /// make_shared control block (vtable-less refcount pair) — accounted with
  /// each live schedule so memory_stats() is an overestimate, never flattery.
  static constexpr std::size_t kSharedPtrCtrlBytes = 32;

  /// One lazily-scheduled kHA CMAC. Validity is by VALUE: serve only when
  /// the stored mac bytes equal the record's current mac bytes, so stale
  /// entries (key replacement, HID reuse, racing writers) self-invalidate.
  struct SchedSlot {
    Hid hid = 0;
    std::array<std::uint8_t, 16> mac{};
    std::shared_ptr<const crypto::AesCmac> cmac;  // null = empty
  };
  /// Set associativity of the schedule cache: two hot HIDs sharing a set
  /// must coexist, or the uncached classify path re-schedules per packet
  /// (the zero-alloc steady-state invariant of tests/alloc_count_test).
  static constexpr std::size_t kSchedWays = 4;

  /// HIDs are small dense integers (the RS allocates sequentially); the
  /// index needs their hashes spread across probe space. SplitMix64
  /// finalizer. The three consumers take DISJOINT bit ranges — stripe
  /// selection bits [0,16), index homes bits [16,40), schedule sets bits
  /// [40,64) — because within one stripe the stripe bits are constant by
  /// construction: reusing them would fold every record onto 1/count_ of
  /// the probe space (the same bit-disjointness rule FlowCache and
  /// core/flow_steer.h follow).
  static std::uint64_t mix(Hid hid) {
    std::uint64_t x = hid;
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
  static std::uint64_t index_bits(Hid hid) { return mix(hid) >> 16; }
  static std::uint64_t sched_bits(Hid hid) { return mix(hid) >> 40; }

  struct alignas(64) Stripe {
    mutable std::shared_mutex mu;
    std::vector<IndexEntry> index;  // power-of-two, linear probing
    std::vector<std::unique_ptr<CompactHostRecord[]>> slabs;
    std::vector<std::uint32_t> free_slots;
    std::size_t live = 0;      // occupied index entries (not tombstones)
    std::size_t occupied = 0;  // live + tombstones (load-factor input)

    mutable std::mutex sched_mu;
    mutable std::vector<SchedSlot> sched;  // kSchedWays-associative sets
    mutable std::vector<std::uint8_t> sched_rr;  // per-set victim cursor

    CompactHostRecord& record(std::uint32_t slot) {
      return slabs[slot / kSlabRecords][slot % kSlabRecords];
    }
    const CompactHostRecord& record(std::uint32_t slot) const {
      return slabs[slot / kSlabRecords][slot % kSlabRecords];
    }

    /// Lookup under the stripe lock. Returns the arena record or null.
    const CompactHostRecord* get(Hid hid) const {
      if (index.empty()) return nullptr;
      const std::size_t cap_mask = index.size() - 1;
      std::size_t i = index_bits(hid) & cap_mask;
      while (true) {
        const IndexEntry& e = index[i];
        if (e.slot == kEmpty) return nullptr;
        if (e.slot != kTombstone && e.hid == hid) return &record(e.slot);
        i = (i + 1) & cap_mask;
      }
    }

    /// Insert-or-replace under the stripe's exclusive lock. Returns true
    /// when an existing record was replaced.
    bool put(const HostRecord& in) {
      // Grow at 3/4 load (tombstones included) — linear probing stays short.
      if (index.empty() || occupied + 1 > index.size() / 4 * 3) grow();
      const std::size_t cap_mask = index.size() - 1;
      std::size_t i = index_bits(in.hid) & cap_mask;
      std::size_t first_tomb = kEmpty;
      while (true) {
        IndexEntry& e = index[i];
        if (e.slot == kEmpty) break;
        if (e.slot == kTombstone) {
          if (first_tomb == kEmpty) first_tomb = i;
        } else if (e.hid == in.hid) {
          fill(record(e.slot), in);
          return true;
        }
        i = (i + 1) & cap_mask;
      }
      if (first_tomb != kEmpty) {
        i = first_tomb;  // reuse the tombstone; occupied count unchanged
      } else {
        ++occupied;
      }
      IndexEntry& e = index[i];
      e.hid = in.hid;
      e.slot = alloc_slot();
      fill(record(e.slot), in);
      ++live;
      return false;
    }

    /// Tombstone deletion under the exclusive lock. Returns true if erased.
    bool remove(Hid hid) {
      if (index.empty()) return false;
      const std::size_t cap_mask = index.size() - 1;
      std::size_t i = index_bits(hid) & cap_mask;
      while (true) {
        IndexEntry& e = index[i];
        if (e.slot == kEmpty) return false;
        if (e.slot != kTombstone && e.hid == hid) {
          free_slots.push_back(e.slot);
          e.slot = kTombstone;
          --live;
          return true;
        }
        i = (i + 1) & cap_mask;
      }
    }

    /// The schedule-cache hit/fill path; takes sched_mu itself. Validity is
    /// the mac-byte compare — see SchedSlot.
    std::shared_ptr<const crypto::AesCmac> schedule_for(
        const CompactHostRecord& rec) const {
      {
        std::lock_guard lock(sched_mu);
        const std::size_t base = sched_base(rec.hid);
        for (std::size_t w = 0; w < kSchedWays; ++w) {
          const SchedSlot& slot = sched[base + w];
          if (slot.cmac && slot.hid == rec.hid && slot.mac == rec.mac)
            return slot.cmac;
        }
      }
      // Schedule outside the lock (the expansion is the expensive part);
      // last writer wins on a racing double fill — both results are valid.
      auto fresh = std::make_shared<const crypto::AesCmac>(
          ByteSpan(rec.mac.data(), rec.mac.size()));
      std::lock_guard lock(sched_mu);
      sched_put(rec.hid, rec.mac, fresh);
      return fresh;
    }

    /// Installs a schedule (caller holds sched_mu). Victim order: same HID
    /// > empty way > round-robin within the set.
    void sched_put(Hid hid, const std::array<std::uint8_t, 16>& mac,
                   std::shared_ptr<const crypto::AesCmac> cmac) const {
      const std::size_t base = sched_base(hid);
      std::size_t victim = kSchedWays;
      for (std::size_t w = 0; w < kSchedWays; ++w) {
        SchedSlot& slot = sched[base + w];
        if (slot.cmac && slot.hid == hid) {
          victim = w;
          break;
        }
        if (!slot.cmac && victim == kSchedWays) victim = w;
      }
      if (victim == kSchedWays) {
        std::uint8_t& rr = sched_rr[base / kSchedWays];
        victim = rr;
        rr = static_cast<std::uint8_t>((rr + 1) % kSchedWays);
      }
      SchedSlot& slot = sched[base + victim];
      slot.hid = hid;
      slot.mac = mac;
      slot.cmac = std::move(cmac);
    }

    std::size_t sched_base(Hid hid) const {
      return (sched_bits(hid) & (sched.size() / kSchedWays - 1)) * kSchedWays;
    }

   private:
    static void fill(CompactHostRecord& dst, const HostRecord& in) {
      dst.hid = in.hid;
      dst.subscriber_id = in.subscriber_id;
      dst.enc = in.keys.enc;
      dst.mac = in.keys.mac;
      dst.host_pub = in.host_pub;
    }

    std::uint32_t alloc_slot() {
      if (!free_slots.empty()) {
        const std::uint32_t s = free_slots.back();
        free_slots.pop_back();
        return s;
      }
      // Every slot ever allocated is either in use (one per live record) or
      // in free_slots — and free_slots is empty here, so the first
      // never-used slot is exactly `live` (this record is not counted yet).
      const std::uint32_t used = static_cast<std::uint32_t>(live);
      if (used >= slabs.size() * kSlabRecords)
        slabs.push_back(std::make_unique<CompactHostRecord[]>(kSlabRecords));
      return used;
    }

    /// Doubles the index (min 64 entries), dropping tombstones.
    void grow() {
      const std::size_t new_cap = index.empty() ? 64 : index.size() * 2;
      std::vector<IndexEntry> old = std::move(index);
      index.assign(new_cap, IndexEntry{});
      occupied = 0;
      const std::size_t cap_mask = new_cap - 1;
      for (const IndexEntry& e : old) {
        if (e.slot == kEmpty || e.slot == kTombstone) continue;
        std::size_t i = index_bits(e.hid) & cap_mask;
        while (index[i].slot != kEmpty) i = (i + 1) & cap_mask;
        index[i] = e;
        ++occupied;
      }
    }
  };

  Stripe& stripe(Hid hid) { return stripes_[mix(hid) & mask_]; }
  const Stripe& stripe(Hid hid) const { return stripes_[mix(hid) & mask_]; }

  std::size_t count_;
  std::size_t mask_;
  std::unique_ptr<Stripe[]> stripes_;
  VerdictEpoch* epoch_;
};

}  // namespace apna::core

// host_info — the per-AS database mapping HID → host state (Fig 2/3/4).
//
// Populated by the Registry Service at bootstrap and consulted by every
// infrastructure entity: the MS (request authentication), border routers
// (per-packet MAC verification) and the accountability agent (shutoff
// validation). Implemented as the paper implements it: "a hashtable using
// HID as the key" (§V-A2) — here lock-striped into kDefaultShardCount
// stripes (core/sharded.h) so M router workers doing the Fig 4 "HID ∈
// host_info" lookup never serialize on a global lock while the RS keeps
// enrolling hosts.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/ids.h"
#include "core/keys.h"
#include "core/sharded.h"
#include "crypto/modes.h"

namespace apna::core {

struct HostRecord {
  Hid hid = 0;
  HostAsKeys keys;                    // kHA (enc + mac halves)
  crypto::X25519PublicKey host_pub{}; // K+_H learned at authentication
  std::uint32_t subscriber_id = 0;    // the authenticated customer identity
  /// Pre-scheduled CMAC under keys.mac — the border routers verify one MAC
  /// per packet (Fig 4), so the key schedule is amortized here. Immutable
  /// and shared_ptr-held: a router worker's copy of the record keeps the
  /// schedule alive even if the RS replaces the entry mid-verification.
  std::shared_ptr<const crypto::AesCmac> cmac;
};

class HostDb {
 public:
  /// `epoch` (optional) is bumped on every mutation that can invalidate a
  /// previously verified flow-cache verdict: replacing an existing record
  /// (the pre-scheduled kHA may change) and erasing one. A brand-new HID
  /// never bumps — negative verdicts are never cached, so an insert cannot
  /// make a cached verdict wrong.
  explicit HostDb(std::size_t shard_count = kDefaultShardCount,
                  VerdictEpoch* epoch = nullptr)
      : map_(shard_count), epoch_(epoch) {}

  /// Inserts or replaces the record for record.hid, pre-scheduling its
  /// packet-MAC key.
  void upsert(HostRecord record) {
    if (!record.cmac)
      record.cmac = std::make_shared<const crypto::AesCmac>(
          ByteSpan(record.keys.mac.data(), record.keys.mac.size()));
    const Hid hid = record.hid;
    const bool inserted = map_.insert_or_assign(hid, std::move(record));
    if (!inserted && epoch_) epoch_->bump();
  }

  /// Fig 4: "if HID ∉ host_info drop packet". Copy-out under the shard lock.
  std::optional<HostRecord> find(Hid hid) const { return map_.find(hid); }

  bool contains(Hid hid) const { return map_.contains(hid); }

  void prefetch(Hid hid) const { map_.prefetch(hid); }

  /// Removes a host entirely (HID revocation, §VIII-G2 / §VI-A identity
  /// minting: "if a host requests a new HID, the previous HID ... revoked").
  void erase(Hid hid) {
    if (map_.erase(hid) && epoch_) epoch_->bump();
  }

  std::size_t size() const { return map_.size(); }

 private:
  ShardedMap<Hid, HostRecord> map_;
  VerdictEpoch* epoch_;
};

}  // namespace apna::core

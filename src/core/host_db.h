// host_info — the per-AS database mapping HID → host state (Fig 2/3/4).
//
// Populated by the Registry Service at bootstrap and consulted by every
// infrastructure entity: the MS (request authentication), border routers
// (per-packet MAC verification) and the accountability agent (shutoff
// validation). Implemented as the paper implements it: "a hashtable using
// HID as the key" (§V-A2). Thread-safe for the multi-worker MS experiment.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

#include "core/ids.h"
#include "core/keys.h"
#include "crypto/modes.h"

namespace apna::core {

struct HostRecord {
  Hid hid = 0;
  HostAsKeys keys;                    // kHA (enc + mac halves)
  crypto::X25519PublicKey host_pub{}; // K+_H learned at authentication
  std::uint32_t subscriber_id = 0;    // the authenticated customer identity
  /// Pre-scheduled CMAC under keys.mac — the border routers verify one MAC
  /// per packet (Fig 4), so the key schedule is amortized here.
  std::shared_ptr<const crypto::AesCmac> cmac;
};

class HostDb {
 public:
  /// Inserts or replaces the record for record.hid, pre-scheduling its
  /// packet-MAC key.
  void upsert(HostRecord record) {
    if (!record.cmac)
      record.cmac = std::make_shared<const crypto::AesCmac>(
          ByteSpan(record.keys.mac.data(), record.keys.mac.size()));
    std::unique_lock lock(mu_);
    map_[record.hid] = std::move(record);
  }

  /// Fig 4: "if HID ∉ host_info drop packet".
  std::optional<HostRecord> find(Hid hid) const {
    std::shared_lock lock(mu_);
    auto it = map_.find(hid);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  bool contains(Hid hid) const {
    std::shared_lock lock(mu_);
    return map_.contains(hid);
  }

  /// Removes a host entirely (HID revocation, §VIII-G2 / §VI-A identity
  /// minting: "if a host requests a new HID, the previous HID ... revoked").
  void erase(Hid hid) {
    std::unique_lock lock(mu_);
    map_.erase(hid);
  }

  std::size_t size() const {
    std::shared_lock lock(mu_);
    return map_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<Hid, HostRecord> map_;
};

}  // namespace apna::core

// The EphID construction of Fig 6 — the heart of APNA.
//
//   EphID = AES-CTR_{kA'}(HID ‖ ExpTime)[0..8) ‖ IV(4) ‖ CBC-MAC_{kA''}(CT ‖ IV)(4)
//
// Encrypt-then-MAC with a fresh 4-byte IV per EphID:
//  * the issuing AS recovers (HID, ExpTime) statelessly by decryption
//    (design choice 1, §IV — no mapping table);
//  * the MAC makes the scheme CCA-secure: any forged or modified EphID is
//    rejected before the HID is even looked at (§VI-A "Unauthorized EphID
//    Generation"). CBC-MAC is safe here because its input length is fixed
//    at exactly one block (footnote 3).
//  * the random IV lets one HID hold many unlinkable EphIDs (§V-A1).
#pragma once

#include <cstdint>

#include "core/ids.h"
#include "crypto/aes.h"
#include "crypto/modes.h"
#include "crypto/rng.h"
#include "util/result.h"

namespace apna::core {

/// Decrypted EphID contents.
struct EphIdPlain {
  Hid hid = 0;
  ExpTime exp_time = 0;
};

/// Issues and opens EphIDs for one AS. Immutable after construction; safe to
/// share across the AS's infrastructure (MS, border routers, AA) — they all
/// hold kA and derive kA'/kA'' identically (§V-A1).
class EphIdCodec {
 public:
  /// Field offsets within the 16-byte EphID (Fig 6 right-hand side).
  static constexpr std::size_t kCtOffset = 0;   // 8 B ciphertext
  static constexpr std::size_t kIvOffset = 8;   // 4 B IV
  static constexpr std::size_t kMacOffset = 12; // 4 B CBC-MAC tag

  /// Derives kA' (encryption) and kA'' (authentication) from kA.
  explicit EphIdCodec(ByteSpan ka16);

  /// Issues a fresh EphID with a random IV.
  EphId issue(Hid hid, ExpTime exp_time, crypto::Rng& rng) const;

  /// Deterministic-IV variant (tests; also lets callers manage IV space).
  EphId issue_with_iv(Hid hid, ExpTime exp_time, std::uint32_t iv) const;

  /// Authenticates and decrypts. Errc::decrypt_failed when the tag is wrong
  /// (forged/corrupted EphID, or an EphID of a different AS).
  Result<EphIdPlain> open(const EphId& ephid) const;

  /// Batched open for the forwarding fast path: authenticates and decrypts
  /// `n` EphIDs with two gathered AES passes (one for the CBC-MAC tags, one
  /// for the CTR keystream) instead of 2n single-block calls, letting the
  /// AES-NI backend pipeline 8 blocks in flight. `ok[i]` is nonzero iff
  /// `ephids[i]` is authentic, in which case `plain[i]` holds its contents.
  /// Verdicts agree exactly with per-element open().
  void open_batch(const EphId* ephids, std::size_t n, EphIdPlain* plain,
                  std::uint8_t* ok) const;

  /// Miss-list (gather/scatter) form: `ephids16[i]` points at the i-th
  /// 16-byte EphID wherever it lies — typically straight into the packet
  /// wire images of a burst's flow-cache MISSES, so the AES sweep touches
  /// only the EphIDs that actually need crypto and the dense copy into an
  /// EphId array disappears. Same verdict contract as open_batch (which is
  /// now a thin wrapper over this form).
  void open_batch_gather(const std::uint8_t* const* ephids16, std::size_t n,
                         EphIdPlain* plain, std::uint8_t* ok) const;

  /// The AES backend in use ("aesni"/"soft") — surfaced by benchmarks.
  const char* backend() const { return enc_.backend(); }

 private:
  crypto::Aes128 enc_;  // kA'
  crypto::Aes128 mac_;  // kA''
};

}  // namespace apna::core

// E6 — EphID construction/verification microbenchmark (§V-A1).
// Metric: ns per issue / open / forged-reject (google-benchmark timers)
// and derived EphIDs-per-second-per-core minting capacity.
//
// The Fig 6 construction costs exactly two AES operations to issue (one
// CTR block, one CBC-MAC block) and two to open. This google-benchmark
// binary measures issue, open, and rejection of forged EphIDs, plus the
// derived per-flow budget context (how many EphIDs/s one core can mint,
// vs the 3,888/s peak demand of §V-A3).
#include <benchmark/benchmark.h>

#include "core/ephid.h"
#include "crypto/rng.h"

using namespace apna;

namespace {

core::EphIdCodec& codec() {
  static core::EphIdCodec c = [] {
    crypto::ChaChaRng rng(1);
    return core::EphIdCodec(rng.bytes(16));
  }();
  return c;
}

void BM_EphIdIssue(benchmark::State& state) {
  std::uint32_t iv = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec().issue_with_iv(7, 1'700'000'900, ++iv));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(codec().backend());
}
BENCHMARK(BM_EphIdIssue);

void BM_EphIdOpen(benchmark::State& state) {
  const core::EphId e = codec().issue_with_iv(7, 1'700'000'900, 42);
  for (auto _ : state) {
    auto r = codec().open(e);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EphIdOpen);

void BM_EphIdOpenForgedRejected(benchmark::State& state) {
  core::EphId forged{};
  crypto::ChaChaRng rng(2);
  rng.fill(MutByteSpan(forged.bytes.data(), 16));
  for (auto _ : state) {
    auto r = codec().open(forged);
    if (r.ok()) std::abort();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EphIdOpenForgedRejected);

void BM_EphIdIssueBatchPerFlowDemand(benchmark::State& state) {
  // Mint EphIDs at the per-flow demand unit (one per new session): a batch
  // of 3,888 — one peak-second of the paper's AS.
  std::uint32_t iv = 0;
  for (auto _ : state) {
    for (int i = 0; i < 3'888; ++i)
      benchmark::DoNotOptimize(codec().issue_with_iv(
          static_cast<core::Hid>(i), 1'700'000'900, ++iv));
  }
  state.SetItemsProcessed(state.iterations() * 3'888);
  state.SetLabel("one peak-second of EphID demand (3,888 IDs)");
}
BENCHMARK(BM_EphIdIssueBatchPerFlowDemand);

}  // namespace

BENCHMARK_MAIN();

// E5 — Connection-establishment latency (§VII-C).
// Metric: handshake-complete and first-data-delivered times in RTT units
// per connection mode (host-to-host, client-server, 0.5/0-RTT variants).
//
// Paper claims, in units of RTT:
//   host-to-host:   1 RTT before communication; 0 with data on the first
//                   packet.
//   client-server:  1.5 RTT (contact receive-only EphID, get the serving
//                   certificate, then send); reducible to 0.5 RTT (no data
//                   in the first flight) or 0 RTT (data encrypted under the
//                   receive-only key in the first packet).
//
// We time every mode on the simulator with symmetric links and report
// (a) when the handshake completes at the client and (b) when the first
// application byte reaches the peer, both in RTT units. The paper mixes
// these two conventions (1 RTT counts (a); 1.5 RTT counts (b)); the table
// states which column reproduces which claim.
#include <cstdio>
#include <optional>

#include "apna/internet.h"
#include "bench_util.h"

// Connection establishment rides on EphID acquisition (Fig 3): the client
// side of every mode below first ran the control-plane RPC through the
// AS's ServiceDispatcher. acquisition_us() times that RPC on the same
// fabric so the E5 table shows the control-plane term next to the RTT
// terms.

using namespace apna;

namespace {

struct Timeline {
  double handshake_rtt = -1;   // connect callback at the client
  double first_data_rtt = -1;  // first app byte delivered at the peer
};

constexpr net::TimeUs kLink = 10'000;  // inter-AS one-way 10 ms
constexpr net::TimeUs kHop = 50;       // intra-AS hop

/// One-way delay host→host across the two ASes, and the RTT.
constexpr double kOneWayUs = 2 * kHop + kLink;
constexpr double kRttUs = 2 * kOneWayUs;

Timeline run_mode(bool receive_only_server, bool early_data,
                  bool send_after_established) {
  Internet net{11};
  auto& as_a = net.add_as(100, "A");
  auto& as_b = net.add_as(300, "B");
  net.link(100, 300, kLink);

  host::Host& client = as_a.add_host("client");
  host::Host& server = as_b.add_host("server");
  (void)provision_ephids(client, net.loop(), 1);
  if (receive_only_server) {
    (void)provision_ephids(server, net.loop(), 1,
                           core::EphIdLifetime::long_term,
                           core::kRequestReceiveOnly);
    (void)provision_ephids(server, net.loop(), 1);  // serving EphID
  } else {
    (void)provision_ephids(server, net.loop(), 1);
  }

  const core::EphIdCertificate* target = nullptr;
  for (const auto& e : server.pool().entries()) {
    if (receive_only_server == e->receive_only()) target = &e->cert;
  }

  Timeline tl;
  const net::TimeUs t0 = net.loop().now();
  server.set_data_handler([&](std::uint64_t, ByteSpan) {
    if (tl.first_data_rtt < 0)
      tl.first_data_rtt = (net.loop().now() - t0) / kRttUs;
  });

  host::Host::ConnectOptions opts;
  if (early_data) opts.early_data = to_bytes("first flight data");
  std::uint64_t session = 0;
  auto sid = client.connect(*target, opts, [&](Result<std::uint64_t> r) {
    if (!r.ok()) return;
    tl.handshake_rtt = (net.loop().now() - t0) / kRttUs;
    if (send_after_established)
      (void)client.send_data(*r, to_bytes("post-handshake data"));
  });
  session = sid.ok() ? *sid : 0;
  (void)session;
  net.run();
  return tl;
}

/// Time from request_ephid() to certificate callback, through the intra-AS
/// fabric (switch → dispatcher → MS → switch).
double acquisition_us() {
  Internet net{12};
  auto& as_a = net.add_as(100, "A");
  host::Host& h = as_a.add_host("h");
  const net::TimeUs t0 = net.loop().now();
  net::TimeUs done = t0;
  h.request_ephid(core::EphIdLifetime::short_term, 0,
                  [&](Result<const host::OwnedEphId*> r) {
                    if (r.ok()) done = net.loop().now();
                  });
  net.run();
  return static_cast<double>(done - t0);
}

}  // namespace

int main() {
  bench::print_header("E5 — connection-establishment latency",
                      "§VII-C: host-host 1 RTT (0 with early data); "
                      "client-server 1.5 / 0.5 / 0 RTT");

  std::printf("link model: one-way host-to-host %.2f ms, RTT %.2f ms\n",
              kOneWayUs / 1e3, kRttUs / 1e3);
  std::printf("EphID acquisition RPC (Fig 3, via ServiceDispatcher): "
              "%.0f us intra-AS — amortized across every mode below\n\n",
              acquisition_us());
  std::printf("%-34s %16s %18s %10s\n", "mode", "handshake (RTT)",
              "first data (RTT)", "paper");

  // Host-to-host, no early data: handshake completes in 1 RTT (paper: 1).
  auto hh = run_mode(false, false, true);
  std::printf("%-34s %16.2f %18.2f %10s\n", "host-host, wait for handshake",
              hh.handshake_rtt, hh.first_data_rtt, "1 RTT");

  // Host-to-host, 0-RTT: data rides the first packet (paper: 0 —
  // establishment adds nothing on top of the one-way flight).
  auto hh0 = run_mode(false, true, false);
  std::printf("%-34s %16.2f %18.2f %10s\n", "host-host, 0-RTT early data",
              hh0.handshake_rtt, hh0.first_data_rtt, "0 RTT");

  // Client-server via receive-only EphID, conservative: first data arrives
  // at 1.5 RTT (paper: 1.5).
  auto cs = run_mode(true, false, true);
  std::printf("%-34s %16.2f %18.2f %10s\n", "client-server, wait for cert",
              cs.handshake_rtt, cs.first_data_rtt, "1.5 RTT");

  // Client-server, 0-RTT under the receive-only key (paper: 0).
  auto cs0 = run_mode(true, true, false);
  std::printf("%-34s %16.2f %18.2f %10s\n", "client-server, 0-RTT early data",
              cs0.handshake_rtt, cs0.first_data_rtt, "0 RTT");

  std::printf(
      "\nConvention notes: the paper's host-host '1 RTT' counts handshake\n"
      "completion at the client (column 1); its client-server '1.5 RTT'\n"
      "counts first-data arrival at the server (column 2). The '0.5 RTT'\n"
      "penalty mode equals the wait-for-cert row measured relative to the\n"
      "0-RTT row: %.2f - %.2f = %.2f RTT of protocol-added latency before\n"
      "data flows, matching the paper's 'no data in first packet' penalty\n"
      "of 0.5 RTT when measured from handshake completion (%.2f - %.2f).\n",
      cs.first_data_rtt, cs0.first_data_rtt,
      cs.first_data_rtt - cs0.first_data_rtt, cs.first_data_rtt,
      cs.handshake_rtt);

  bench::print_footer(
      "ordering holds: 0-RTT < host-host 1 RTT < client-server 1.5 RTT; "
      "early data removes all establishment latency in both modes");
  return 0;
}

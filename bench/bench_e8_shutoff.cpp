// E8 — Shutoff-protocol cost at the accountability agent (Fig 5 / §VI-C).
// Metric: ns per AA validation for valid requests vs each forged-request
// class (the anti-amplification property: rejects must cost ≤ accepts).
//
// Measures the AA's validation pipeline for (a) valid requests and (b) the
// forged-request classes an attacker would use for shutoff-DoS: bad
// certificate, bad signature, non-recipient, rogue packet (bad kHA MAC).
// The defensive property: every rejection must cost no more than a valid
// acceptance (cheap checks run first), so flooding the AA with junk cannot
// amplify.
#include <cstdio>

#include "bench_util.h"
#include "core/as_state.h"
#include "core/packet_auth.h"
#include "crypto/x25519.h"
#include "net/sim.h"
#include "services/accountability_agent.h"
#include "services/registry_service.h"
#include "services/service_identity.h"
#include "services/subscriber_registry.h"

using namespace apna;

namespace {

struct Setup {
  crypto::ChaChaRng rng{313};
  net::EventLoop loop;
  // Escalation threshold lifted so the throughput loop does not revoke the
  // test host's HID mid-measurement (§VIII-G2 fires after 16 by default).
  core::AsState as{64512, core::AsSecrets::generate(rng), 100'000'000};
  core::AsState as_b{64513, core::AsSecrets::generate(rng)};
  core::AsDirectory dir;
  services::SubscriberRegistry subs;
  services::RegistryService rs{as, subs, loop, rng};
  services::ServiceIdentity aa_ident = services::make_service_identity(
      as, rs.allocate_hid(), loop.now_seconds() + 86400, 0, nullptr, rng);
  services::AccountabilityAgent aa{as, dir, loop, aa_ident};

  core::Hid attacker_hid = 0;
  core::HostAsKeys attacker_keys;
  core::EphIdKeyPair victim_kp = core::EphIdKeyPair::generate(rng);
  core::EphIdCertificate victim_cert;

  Setup() {
    for (auto* s : {&as, &as_b}) {
      core::AsPublicInfo info;
      info.aid = s->aid;
      info.sign_pub = s->secrets.sign.pub;
      info.dh_pub = s->secrets.dh.pub;
      dir.register_as(info);
    }
    subs.add_subscriber(1, to_bytes("pw"));
    auto lt = crypto::X25519KeyPair::generate(rng);
    core::BootstrapRequest breq;
    breq.subscriber_id = 1;
    breq.credential = to_bytes("pw");
    breq.host_pub = lt.pub;
    auto resp = rs.bootstrap(breq);
    attacker_hid = resp->hid;
    attacker_keys = core::HostAsKeys::derive(
        crypto::x25519_shared(lt.priv, as.secrets.dh.pub));

    victim_cert.ephid = as_b.codec.issue(9, loop.now_seconds() + 900, rng);
    victim_cert.exp_time = loop.now_seconds() + 900;
    victim_cert.pub = victim_kp.pub;
    victim_cert.aid = as_b.aid;
    victim_cert.aa_ephid = victim_cert.ephid;
    victim_cert.sign_with(as_b.secrets.sign);
  }

  core::ShutoffRequest valid_request(std::uint32_t i) {
    wire::Packet pkt;
    pkt.src_aid = as.aid;
    pkt.src_ephid =
        as.codec.issue(attacker_hid, loop.now_seconds() + 900, rng).bytes;
    pkt.dst_aid = as_b.aid;
    pkt.dst_ephid = victim_cert.ephid.bytes;
    pkt.proto = wire::NextProto::data;
    pkt.payload = to_bytes("flood#" + std::to_string(i));
    core::stamp_packet_mac(
        crypto::AesCmac(ByteSpan(attacker_keys.mac.data(), 16)), pkt);
    core::ShutoffRequest req;
    req.offending_packet = pkt.serialize();
    req.sig = victim_kp.sign(req.offending_packet);
    req.dst_cert = victim_cert;
    return req;
  }
};

}  // namespace

int main() {
  bench::print_header("E8 — shutoff validation cost at the AA",
                      "Fig 5 pipeline; §VI-C unauthorized-shutoff defences");

  Setup s;
  const core::ExpTime now = s.loop.now_seconds();

  // Pre-build request variants.
  constexpr std::size_t kN = 2'000;
  std::vector<core::ShutoffRequest> valid, bad_cert, bad_sig, rogue, nonrecip;
  for (std::size_t i = 0; i < kN; ++i) {
    auto v = s.valid_request(static_cast<std::uint32_t>(i));
    valid.push_back(v);

    auto bc = v;
    bc.dst_cert.exp_time += 1;  // breaks the AS signature
    bad_cert.push_back(bc);

    auto bs = v;
    bs.sig[0] ^= 1;
    bad_sig.push_back(bs);

    auto rg = v;
    auto pkt = wire::Packet::parse(rg.offending_packet).take();
    pkt.payload = to_bytes("never actually sent");
    rg.offending_packet = pkt.serialize();
    rg.sig = s.victim_kp.sign(rg.offending_packet);
    rogue.push_back(rg);

    auto nr = v;
    auto pkt2 = wire::Packet::parse(nr.offending_packet).take();
    pkt2.dst_ephid[0] ^= 1;  // addressed to someone else
    nr.offending_packet = pkt2.serialize();
    nr.sig = s.victim_kp.sign(nr.offending_packet);
    nonrecip.push_back(nr);
  }

  auto measure = [&](const std::vector<core::ShutoffRequest>& reqs,
                     Errc expect) {
    return bench::time_per_op_ns(kN, [&](std::size_t i) {
      const auto r = s.aa.process(reqs[i % reqs.size()], now);
      if (r.code() != expect) std::abort();
    });
  };

  const double t_valid = measure(valid, Errc::ok);
  const double t_bad_cert = measure(bad_cert, Errc::bad_signature);
  const double t_bad_sig = measure(bad_sig, Errc::bad_signature);
  const double t_nonrecip = measure(nonrecip, Errc::unauthorized);
  const double t_rogue = measure(rogue, Errc::bad_mac);

  std::printf("%-38s %12s %14s\n", "request class", "us/request",
              "vs valid");
  std::printf("%-38s %12.1f %14s\n", "valid (accepted, EphID revoked)",
              t_valid / 1e3, "1.00x");
  auto row = [&](const char* name, double t) {
    std::printf("%-38s %12.1f %13.2fx\n", name, t / 1e3, t / t_valid);
  };
  row("forged certificate (rejected)", t_bad_cert);
  row("forged requester signature (rejected)", t_bad_sig);
  row("non-recipient requester (rejected)", t_nonrecip);
  row("rogue packet / bad kHA MAC (rejected)", t_rogue);

  const double throughput = 1e9 / t_valid;
  std::printf("\nAA throughput: %.1fk valid shutoffs/s single-threaded\n",
              throughput / 1e3);

  bench::print_footer(
      "every rejection class costs about the same as (or less than) a "
      "valid acceptance — the AA does at most two signature verifications "
      "per request, so junk floods gain no amplification; AA throughput "
      "far exceeds plausible abuse rates");
  return 0;
}

// E4 — Workload trace statistics (§V-A3).
// Metric: total daily entries, unique-host population, diurnal peak
// sessions/s and the flow-duration mix of the synthetic trace vs the
// paper's NREN trace.
//
// Paper: a 24-hour HTTP(S) trace from a European NREN with >104 M HTTP and
// >74 M HTTPS entries, 1,266,598 unique hosts, and a peak rate of 3,888
// active HTTP(S) sessions per second.
//
// Substitution: the seeded synthetic generator (src/trace) reproduces the
// shape: total daily entries, host population, diurnal peak rate, and the
// 98 %-of-flows-under-15-minutes duration mix the paper leans on for EphID
// lifetimes (§VIII-G1).
#include <cstdio>

#include "bench_util.h"
#include "trace/trace_gen.h"

using namespace apna;

int main() {
  bench::print_header("E4 — 24h flow-trace statistics",
                      "§V-A3 trace description (104M+74M entries, 1,266,598 "
                      "hosts, peak 3,888 sessions/s)");

  // Scaled run (1/8 of full rate) keeps the bench fast; rates/counts scale
  // linearly and we report both.
  trace::TraceConfig cfg;
  cfg.scale = 8;
  trace::TraceGenerator gen(cfg);
  const auto t0 = bench::Clock::now();
  const auto stats = gen.run();
  const double gen_s =
      std::chrono::duration<double>(bench::Clock::now() - t0).count();

  const double scale = cfg.scale;
  std::printf("generated %.1fM arrivals (scale 1/%u) in %.2f s\n\n",
              stats.total_entries / 1e6, cfg.scale, gen_s);

  std::printf("%-40s %14s %14s\n", "metric", "paper", "measured(x scale)");
  std::printf("%-40s %14s %14.0fM\n", "total HTTP(S) entries / day",
              "178M", stats.total_entries * scale / 1e6);
  std::printf("%-40s %14s %14.0f\n", "unique hosts", "1266598",
              static_cast<double>(stats.unique_hosts) * scale);
  std::printf("%-40s %14s %14.0f\n", "peak sessions per second (envelope)",
              "3888", cfg.day_peak_per_s);
  std::printf("%-40s %14s %14.0f\n",
              "peak sessions per second (sampled max)", "-",
              stats.peak_arrivals_per_s * scale);
  std::printf("%-40s %14s %14u\n", "peak occurs at second-of-day", "-",
              stats.peak_arrival_second);
  std::printf("%-40s %14s %14.1f%%\n", "flows shorter than 15 min",
              "~98% [11]", stats.fraction_under_15min * 100);
  std::printf("%-40s %14s %14.0f\n", "mean flow duration (s)", "-",
              stats.mean_duration_s);
  std::printf("%-40s %14s %14.0fk\n", "peak concurrent flows", "-",
              stats.peak_concurrent * scale / 1e3);

  bench::print_footer(
      "daily volume ~178M entries, ~1.27M hosts, peak ~3.9k sessions/s and "
      "a 98%-dragonfly duration mix — the inputs E1 and §VIII-G1 consume");
  return 0;
}

// E7-DNS — the §VII-A resolver at Internet scale (ROADMAP: "grow the DNS
// service into a real sharded resolver sized for millions of names").
//
// Holds 10⁶ published names in the sharded TTL cache and measures:
//   * populate rate (zone puts/s) and the cache bytes/name footprint
//     against a hard budget (the HostDb-style memory gate);
//   * cold sweep (every name once — zone hits filling the cache) and hot
//     Zipf lookups/s, single-threaded and through a ResolverPool worker
//     sweep;
//   * an NXDOMAIN storm: random-name flood proving the negative cache's
//     occupancy bound holds and the positive hit rate recovers after;
//   * DomainTrie policy-match cost with a realistic rule table installed.
//
// Emits BENCH_e7.json (bench_util::JsonFile) with provenance; the checked-
// in baseline at the repo root is regenerated manually from a full run.
//
// Usage:
//   bench_e7_dns [--smoke] [--names=N] [--seed=N] [--json=PATH]
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dns/resolver.h"
#include "services/dns_zone.h"

using namespace apna;

namespace {

struct Options {
  bool smoke = false;
  std::uint64_t names = 1'000'000;
  std::uint64_t seed = 1;
  std::string json_path = "BENCH_e7.json";
};

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
    };
    if (a == "--smoke") o.smoke = true;
    else if (const char* v = val("--names=")) o.names = std::strtoull(v, nullptr, 10);
    else if (const char* v = val("--seed=")) o.seed = std::strtoull(v, nullptr, 10);
    else if (const char* v = val("--json=")) o.json_path = v;
    else {
      std::fprintf(stderr,
                   "unknown argument: %s\n"
                   "usage: bench_e7_dns [--smoke] [--names=N] [--seed=N] "
                   "[--json=PATH]\n",
                   a.c_str());
      std::exit(2);
    }
  }
  if (o.smoke && o.names == 1'000'000) o.names = 50'000;
  return o;
}

void fatal(const char* msg) {
  std::fprintf(stderr, "FATAL: %s\n", msg);
  std::exit(1);
}

std::string nth_name(std::uint64_t i) {
  return "h" + std::to_string(i) + ".svc.apna.example";
}

double seconds_since(bench::Clock::time_point t0) {
  return std::chrono::duration<double>(bench::Clock::now() - t0).count();
}

/// The cache memory gate, HostDb-style: slot index + LRU links + name
/// arenas + record slabs, amortized per cached name. Generous enough to
/// absorb allocator slack, tight enough that an accidental std::string or
/// per-entry allocation in the hot path blows it immediately.
constexpr double kBytesPerNameBudget = 512.0;

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  bench::print_header(
      "E7-DNS — sharded resolver with 10^6 names (--names=" +
          std::to_string(o.names) + ")",
      "§VII-A DNS service at §VIII registered-host scale");

  crypto::ChaChaRng rng(o.seed);
  services::DnsZone zone;
  net::EventLoop loop;
  dns::Resolver::Config cfg;
  // Sized for the working set (1<<20 at the full 10^6 names). The index is
  // allocated eagerly, so an oversized capacity would bill empty slots to
  // the bytes/name gate in --smoke runs.
  cfg.cache.capacity = std::bit_ceil(static_cast<std::size_t>(o.names));
  dns::Resolver resolver(zone, loop, cfg);
  const core::ExpTime now = loop.now_seconds();

  // ---- populate: one signed-record template, per-name fields stamped in.
  // Building 10^6 real ed25519 signatures would measure libsodium, not the
  // resolver — the shared cert + dummy sig keeps record sizes honest
  // without the signing cost (the service-level signing path is covered by
  // dns_test).
  core::DnsRecord rec;
  rec.cert.aid = 64512;
  rec.cert.exp_time = now + 86400;
  rng.fill(MutByteSpan(rec.cert.pub.dh.data(), rec.cert.pub.dh.size()));
  rng.fill(MutByteSpan(rec.cert.pub.sig.data(), rec.cert.pub.sig.size()));
  rng.fill(MutByteSpan(rec.sig.data(), rec.sig.size()));
  auto t0 = bench::Clock::now();
  for (std::uint64_t i = 0; i < o.names; ++i) {
    rec.name = nth_name(i);
    rec.ipv4 = static_cast<std::uint32_t>(i + 1);
    zone.put(rec);
  }
  const double populate_s = seconds_since(t0);
  const double populate_rate = static_cast<double>(o.names) / populate_s;
  std::printf("populate: %llu names in %.2fs (%.2f M/s)\n",
              static_cast<unsigned long long>(o.names), populate_s,
              populate_rate / 1e6);

  // ---- cold sweep: every name once. All zone hits, cache filling.
  t0 = bench::Clock::now();
  for (std::uint64_t i = 0; i < o.names; ++i) {
    const auto a = resolver.resolve(nth_name(i), now);
    if (a.status != dns::Resolver::Status::ok) fatal("cold lookup failed");
  }
  const double cold_s = seconds_since(t0);
  const double cold_rate = static_cast<double>(o.names) / cold_s;
  std::printf("cold sweep: %.2f M lookups/s (zone-backed, cache-filling)\n",
              cold_rate / 1e6);

  // ---- memory gate at full occupancy.
  const auto mem = resolver.cache().memory_stats();
  std::printf("cache: %llu entries, %.1f B/name (budget %.0f) — "
              "%.1f MiB total\n",
              static_cast<unsigned long long>(mem.entries),
              mem.bytes_per_name(), kBytesPerNameBudget,
              static_cast<double>(mem.total()) / (1024.0 * 1024.0));
  if (mem.entries < std::min<std::uint64_t>(o.names, 1u << 20) * 9 / 10)
    fatal("cache failed to retain the working set");
  if (mem.bytes_per_name() > kBytesPerNameBudget)
    fatal("cache bytes/name over budget");

  // ---- hot Zipf pass, single thread.
  const std::uint64_t hot_lookups = o.smoke ? 200'000 : 2'000'000;
  bench::ZipfSampler zipf(static_cast<std::size_t>(o.names), 1.1,
                          rng.next_u64());
  std::vector<std::string> hot_names;
  hot_names.reserve(hot_lookups);
  for (std::uint64_t i = 0; i < hot_lookups; ++i)
    hot_names.push_back(nth_name(zipf.next()));
  auto before = resolver.stats();
  t0 = bench::Clock::now();
  for (const auto& n : hot_names) resolver.resolve(n, now);
  const double hot_s = seconds_since(t0);
  auto after = resolver.stats();
  const double hot_rate = static_cast<double>(hot_lookups) / hot_s;
  const double hot_hit_rate =
      static_cast<double>(after.cache_hits - before.cache_hits) /
      static_cast<double>(hot_lookups);
  std::printf("hot zipf: %.2f M lookups/s, %.1f%% cache hits\n",
              hot_rate / 1e6, 100.0 * hot_hit_rate);

  // ---- ResolverPool worker sweep over the same hot burst.
  struct PoolRow {
    std::size_t threads;
    double rate;
  };
  std::vector<PoolRow> pool_rows;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    if (threads > bench::hardware_concurrency()) break;
    dns::ResolverPool::Config pc;
    pc.threads = threads;
    dns::ResolverPool pool(resolver, pc);
    std::vector<dns::Resolver::Answer> out(hot_names.size());
    t0 = bench::Clock::now();
    pool.process_lookups(hot_names, now, out);
    const double s = seconds_since(t0);
    pool_rows.push_back(
        {threads, static_cast<double>(hot_names.size()) / s});
    std::printf("pool x%zu: %.2f M lookups/s\n", threads,
                pool_rows.back().rate / 1e6);
  }

  // ---- NXDOMAIN storm: random junk names, then the recovery pass.
  const std::uint64_t storm_lookups = o.smoke ? 200'000 : 2'000'000;
  before = resolver.stats();
  t0 = bench::Clock::now();
  for (std::uint64_t i = 0; i < storm_lookups; ++i) {
    char junk[20];
    std::snprintf(junk, sizeof junk, "x%016llx",
                  static_cast<unsigned long long>(rng.next_u64()));
    resolver.resolve(std::string(junk) + ".flood.example", now);
  }
  const double storm_s = seconds_since(t0);
  after = resolver.stats();
  const double storm_rate = static_cast<double>(storm_lookups) / storm_s;
  const std::uint64_t storm_negative =
      (after.nxdomain - before.nxdomain) +
      (after.negative_hits - before.negative_hits);
  if (storm_negative != storm_lookups)
    fatal("storm lookups leaked a non-negative answer");
  const std::uint64_t neg_entries = resolver.cache().negative_size();
  const std::uint64_t neg_cap = resolver.cache().negative_capacity();
  std::printf("nxdomain storm: %.2f M lookups/s; %llu negative entries "
              "(cap %llu)\n",
              storm_rate / 1e6, static_cast<unsigned long long>(neg_entries),
              static_cast<unsigned long long>(neg_cap));
  if (neg_entries > neg_cap) fatal("negative cache exceeded its bound");

  // Recovery: the hot distribution again — hit rate must come back.
  before = resolver.stats();
  for (const auto& n : hot_names) resolver.resolve(n, now);
  after = resolver.stats();
  const double recovery_hit_rate =
      static_cast<double>(after.cache_hits - before.cache_hits) /
      static_cast<double>(hot_names.size());
  std::printf("post-storm recovery: %.1f%% cache hits (hot pass was %.1f%%)\n",
              100.0 * recovery_hit_rate, 100.0 * hot_hit_rate);
  if (recovery_hit_rate + 0.05 < hot_hit_rate)
    fatal("positive hit rate did not recover after the storm");

  // ---- policy-match cost: a realistic rule table, then blocked/clean
  // lookups through the DomainTrie.
  const std::size_t rules = o.smoke ? 256 : 4096;
  for (std::size_t i = 0; i < rules; ++i) {
    const std::string domain = "bad" + std::to_string(i) + ".example";
    if (i % 4 == 0) resolver.policy().monitor(domain);
    else resolver.policy().block(domain);
  }
  // Prebuilt probe names: the timed loop measures the trie walk (plus the
  // reader lock), not std::string assembly.
  std::vector<std::string> blocked_probes, clean_probes;
  for (std::size_t i = 0; i < rules; ++i) {
    blocked_probes.push_back("deep.sub.bad" + std::to_string(i) + ".example");
    clean_probes.push_back(nth_name(i));
  }
  const std::size_t probe_iters = o.smoke ? 100'000 : 1'000'000;
  const double match_hit_ns = bench::time_per_op_ns(probe_iters, [&](std::size_t i) {
    resolver.policy().blocked(blocked_probes[i % rules], nullptr);
  });
  const double match_miss_ns = bench::time_per_op_ns(probe_iters, [&](std::size_t i) {
    resolver.policy().blocked(clean_probes[i % rules], nullptr);
  });
  std::printf("policy: %zu rules, %.0f ns/match (blocked subdomain), "
              "%.0f ns/match (clean name), %.1f KiB trie\n",
              rules, match_hit_ns, match_miss_ns,
              static_cast<double>(resolver.policy().memory_bytes()) / 1024.0);

  // ---- emit the baseline.
  bench::JsonFile json(o.json_path);
  if (!json.ok()) fatal("cannot open JSON output");
  json.field("experiment", "e7_dns");
  json.machine_shape();
  json.provenance(o.seed);
  json.field("smoke", o.smoke);
  json.field("names", o.names);
  json.field("cache_capacity", static_cast<std::uint64_t>(cfg.cache.capacity));
  json.field("populate_per_s", populate_rate, 0);
  json.field("cold_lookups_per_s", cold_rate, 0);
  json.field("hot_lookups_per_s", hot_rate, 0);
  json.field("hot_hit_rate", hot_hit_rate, 4);
  json.field("cache_entries", mem.entries);
  json.field("cache_bytes_total", mem.total());
  json.field("cache_bytes_per_name", mem.bytes_per_name(), 1);
  json.field("cache_bytes_per_name_budget", kBytesPerNameBudget, 0);
  json.begin_array("pool_sweep");
  for (const auto& row : pool_rows) {
    json.begin_object();
    json.field("threads", static_cast<std::uint64_t>(row.threads));
    json.field("lookups_per_s", row.rate, 0);
    json.end_object();
  }
  json.end_array();
  json.field("storm_lookups", storm_lookups);
  json.field("storm_lookups_per_s", storm_rate, 0);
  json.field("negative_entries", neg_entries);
  json.field("negative_capacity", neg_cap);
  json.field("recovery_hit_rate", recovery_hit_rate, 4);
  json.field("policy_rules", static_cast<std::uint64_t>(rules));
  json.field("policy_match_blocked_ns", match_hit_ns, 1);
  json.field("policy_match_clean_ns", match_miss_ns, 1);
  json.field("policy_trie_bytes",
             static_cast<std::uint64_t>(resolver.policy().memory_bytes()));
  if (!json.close()) fatal("JSON close failed");

  bench::print_footer(
      "10^6-name cache under budget, negative storm bounded, hit rate "
      "recovered; baseline written to " + o.json_path);
  return 0;
}

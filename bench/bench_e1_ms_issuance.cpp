// E1 — MS performance (§V-A3).
// Metric: µs per EphID issuance and aggregate EphIDs/sec (1 and 4 workers)
// vs the trace's 3,888 sessions/s peak demand.
//
// Paper: "For 500,000 EphID requests, our implementation runs for 6.9
// seconds. On average, 13.7 µs are needed for a single EphID generation,
// translating to a generation rate of 72.8k EphIDs/sec — over 18 times
// higher than the request rate [peak 3,888 sessions/s]." The paper
// parallelizes across 4 processes.
//
// We measure the identical server-side work (Fig 3): open the control
// EphID, validate, decrypt the request, generate the EphID, sign C_EphID
// with ed25519 and encrypt the reply — single-threaded and with 4 workers —
// and compare against the synthetic trace's peak session rate.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/as_state.h"
#include "core/messages.h"
#include "crypto/x25519.h"
#include "net/sim.h"
#include "services/management_service.h"
#include "services/registry_service.h"
#include "services/service_identity.h"
#include "services/subscriber_registry.h"
#include "trace/trace_gen.h"

using namespace apna;

namespace {

struct Setup {
  crypto::ChaChaRng rng{404};
  net::EventLoop loop;
  core::AsState as{64512, core::AsSecrets::generate(rng)};
  services::SubscriberRegistry subs;
  services::RegistryService rs{as, subs, loop, rng};
  services::ServiceIdentity aa = services::make_service_identity(
      as, rs.allocate_hid(), loop.now_seconds() + 86400, 0, nullptr, rng);
  services::ServiceIdentity ms_ident = services::make_service_identity(
      as, rs.allocate_hid(), loop.now_seconds() + 86400, 0, &aa.cert.ephid,
      rng);
  services::ManagementService ms{as, loop, rng, ms_ident};

  core::EphId ctrl;
  core::HostAsKeys keys;

  Setup() {
    subs.add_subscriber(1, to_bytes("pw"));
    auto lt = crypto::X25519KeyPair::generate(rng);
    core::BootstrapRequest req;
    req.subscriber_id = 1;
    req.credential = to_bytes("pw");
    req.host_pub = lt.pub;
    auto resp = rs.bootstrap(req);
    ctrl = resp->ctrl_ephid;
    keys = core::HostAsKeys::derive(
        crypto::x25519_shared(lt.priv, as.secrets.dh.pub));
  }

  /// Pre-builds sealed requests (client-side cost, excluded from server
  /// timing, exactly as the paper measures the MS).
  std::vector<Bytes> make_requests(std::size_t n, std::uint64_t nonce0) {
    std::vector<Bytes> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      core::EphIdRequest req;
      req.ephid_pub = core::EphIdKeyPair::generate(rng).pub;
      req.flags = 0;
      req.lifetime = core::EphIdLifetime::short_term;
      out.push_back(core::seal_control(keys, nonce0 + i, true,
                                       req.serialize()));
    }
    return out;
  }
};

}  // namespace

int main() {
  bench::print_header(
      "E1 — EphID Management Server issuance rate",
      "§V-A3 (text table: 500k requests, 13.7 µs/EphID, 72.8k EphIDs/s, "
      "18x the peak AS demand of 3,888 sessions/s)");

  Setup s;
  std::printf("AES backend: %s | hardware threads: %u\n",
              s.as.codec.backend(), std::thread::hardware_concurrency());

  // --- Demand side: peak session rate from the synthetic trace -------------
  trace::TraceConfig tc;
  tc.scale = 16;  // keep the bench quick; rates scale linearly
  const auto tstats = trace::TraceGenerator(tc).run();
  // The diurnal envelope peaks at the paper's 3,888 sessions/s; the sampled
  // per-second maximum sits a few Poisson sigmas above it.
  const double peak_demand = tc.day_peak_per_s;
  std::printf(
      "Synthetic 24h trace (scale 1/%u): %.1fM arrivals, %llu unique hosts, "
      "envelope peak %.0f sessions/s (sampled max %.0f x scale)\n",
      tc.scale, tstats.total_entries * tc.scale / 1e6,
      static_cast<unsigned long long>(tstats.unique_hosts) * tc.scale,
      peak_demand,
      static_cast<double>(tstats.peak_arrivals_per_s) * tc.scale);

  // --- Single-worker issuance ------------------------------------------------
  constexpr std::size_t kRequests = 20'000;
  auto requests = s.make_requests(kRequests, 1);
  const core::ExpTime now = s.loop.now_seconds();

  const double ns_per_issue = bench::time_per_op_ns(
      kRequests, [&](std::size_t i) {
        auto r = s.ms.issue_sealed(s.ctrl, requests[i % kRequests], now,
                                   s.rng);
        if (!r.ok()) std::abort();
      });
  const double us_single = ns_per_issue / 1000.0;
  const double rate_single = 1e9 / ns_per_issue;

  // --- 4-worker issuance (the paper's parallelization) -----------------------
  constexpr int kWorkers = 4;
  std::vector<std::vector<Bytes>> worker_reqs;
  for (int w = 0; w < kWorkers; ++w)
    worker_reqs.push_back(s.make_requests(kRequests / kWorkers,
                                          1'000'000 + w * kRequests));
  const auto t0 = bench::Clock::now();
  {
    std::vector<std::thread> threads;
    for (int w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&, w] {
        crypto::ChaChaRng worker_rng(9000 + w);
        for (const auto& req : worker_reqs[w]) {
          auto r = s.ms.issue_sealed(s.ctrl, req, now, worker_rng);
          if (!r.ok()) std::abort();
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double par_s =
      std::chrono::duration<double>(bench::Clock::now() - t0).count();
  const double rate_par = kRequests / par_s;

  // --- The paper's table -------------------------------------------------------
  const double t500k_single = 500'000.0 * us_single / 1e6;
  const double t500k_par = 500'000.0 / rate_par;
  std::printf("\n%-44s %12s %12s\n", "metric", "paper", "measured");
  std::printf("%-44s %12s %12.1f\n", "per-EphID server time, 1 worker (us)",
              "-", us_single);
  std::printf("%-44s %12s %12.1f\n",
              "per-EphID effective time, 4 workers (us)", "13.7",
              1e6 / rate_par);
  std::printf("%-44s %12s %12.2f\n", "time for 500k EphIDs, 4 workers (s)",
              "6.9", t500k_par);
  std::printf("%-44s %12s %12.1f\n", "issuance rate, 1 worker (kEphID/s)",
              "-", rate_single / 1e3);
  std::printf("%-44s %12s %12.1f\n", "issuance rate, 4 workers (kEphID/s)",
              "72.8", rate_par / 1e3);
  std::printf("%-44s %12s %12.0f\n", "peak AS demand (sessions/s)", "3888",
              peak_demand);
  std::printf("%-44s %12s %12.1fx\n", "headroom: rate / peak demand", "18.7x",
              rate_par / peak_demand);
  std::printf("%-44s %12s %12.2fx\n", "4-worker speedup", "~4x",
              rate_par / rate_single);
  std::printf("(server work measured on %zu requests, extrapolated to 500k; "
              "t500k 1-worker would be %.1f s)\n",
              kRequests, t500k_single);

  bench::print_footer(
      "issuance rate must exceed peak demand by a large factor (paper: "
      "18.7x), and 4 workers scale near-linearly");
  return 0;
}

// E1 — MS performance (§V-A3).
// Metric: µs per EphID issuance, aggregate EphIDs/sec for a --workers
// sweep through services::ServicePool, and heap allocations per request —
// recorded to BENCH_e1.json (same role as BENCH_e2.json for the data
// plane) and compared against the trace's 3,888 sessions/s peak demand.
//
// Paper: "For 500,000 EphID requests, our implementation runs for 6.9
// seconds. On average, 13.7 µs are needed for a single EphID generation,
// translating to a generation rate of 72.8k EphIDs/sec — over 18 times
// higher than the request rate [peak 3,888 sessions/s]." The paper
// parallelizes across 4 processes; ServicePool is that parallelization as
// a first-class runtime (M workers over the sharded AS state, per-request
// deterministic rng/nonce).
//
// We measure the identical server-side work (Fig 3): open the control
// EphID, validate, decrypt the request, generate the EphID, sign C_EphID
// with ed25519 and encrypt the reply — through ManagementService::
// issue_into, single-threaded and fanned across the worker sweep.
//
// allocs/request is an ASSERTED ceiling, not just a report: issue_into
// pools its whole reply build (decrypt scratch, response encode, stack
// AEAD) through the per-thread BufferPool, so a regression that
// reintroduces per-request heap churn fails the bench.
//
// Usage: bench_e1_ms_issuance [--workers=1,2,4] [--requests=20000] [--smoke]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/as_state.h"
#include "core/messages.h"
#include "crypto/x25519.h"
#include "net/sim.h"
#include "services/management_service.h"
#include "services/registry_service.h"
#include "services/service_identity.h"
#include "services/service_runtime.h"
#include "services/subscriber_registry.h"
#include "trace/trace_gen.h"
// Heap-allocation counter (same hook as alloc_count_test / bench_e2):
// allocs/request is part of the recorded baseline — the pooled MsgWriter/
// PacketWriter codec must keep it flat and small.
#include "util/alloc_count_hook.h"

using namespace apna;

namespace {

struct Setup {
  crypto::ChaChaRng rng{404};
  net::EventLoop loop;
  core::AsState as{64512, core::AsSecrets::generate(rng)};
  services::SubscriberRegistry subs;
  services::RegistryService rs{as, subs, loop, rng};
  services::ServiceIdentity aa = services::make_service_identity(
      as, rs.allocate_hid(), loop.now_seconds() + 86400, 0, nullptr, rng);
  services::ServiceIdentity ms_ident = services::make_service_identity(
      as, rs.allocate_hid(), loop.now_seconds() + 86400, 0, &aa.cert.ephid,
      rng);
  services::ManagementService ms{as, loop, rng, ms_ident};

  core::EphId ctrl;
  core::HostAsKeys keys;

  Setup() {
    subs.add_subscriber(1, to_bytes("pw"));
    auto lt = crypto::X25519KeyPair::generate(rng);
    core::BootstrapRequest req;
    req.subscriber_id = 1;
    req.credential = to_bytes("pw");
    req.host_pub = lt.pub;
    auto resp = rs.bootstrap(req);
    ctrl = resp->ctrl_ephid;
    keys = core::HostAsKeys::derive(
        crypto::x25519_shared(lt.priv, as.secrets.dh.pub));
  }

  /// Pre-builds sealed requests (client-side cost, excluded from server
  /// timing, exactly as the paper measures the MS).
  std::vector<Bytes> make_requests(std::size_t n, std::uint64_t nonce0) {
    std::vector<Bytes> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto kp = core::EphIdKeyPair::generate(rng);
      core::EphIdRequest req;
      req.ephid_pub = kp.pub;
      req.flags = 0;
      req.lifetime = core::EphIdLifetime::short_term;
      req.pop_sig = kp.sign(req.pop_tbs());
      wire::MsgWriter plain(160);
      req.encode(plain);
      out.push_back(core::seal_control(keys, nonce0 + i, true, plain.span()));
    }
    return out;
  }
};

struct SweepPoint {
  std::size_t workers = 0;
  double rate_per_s = 0;
  double allocs_per_request = 0;
  double speedup = 1.0;
};

/// The pooled reply build must stay at or below this many heap
/// allocations per request (was 10.00 before the BufferPool scratch
/// rework; what remains is the taken result Bytes plus pool-resize slack).
constexpr double kMaxAllocsPerRequest = 4.0;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: bench_e1_ms_issuance [--workers=1,2,4] "
               "[--requests=20000] [--smoke]\n");
  std::exit(2);
}

std::size_t parse_count(const std::string& tok) {
  try {
    std::size_t pos = 0;
    const std::size_t v = std::stoul(tok, &pos);
    if (pos != tok.size() || v == 0) usage();
    return v;
  } catch (const std::exception&) {
    usage();
  }
}

std::vector<std::size_t> parse_workers(int argc, char** argv,
                                       std::size_t* requests) {
  std::vector<std::size_t> workers{1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      continue;  // handled by bench::smoke_mode
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers.clear();
      std::string list(argv[i] + 10);
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        workers.push_back(parse_count(list.substr(pos, comma - pos)));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      *requests = parse_count(argv[i] + 11);
    } else {
      usage();
    }
  }
  if (workers.empty()) usage();
  return workers;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "E1 — EphID Management Server issuance rate",
      "§V-A3 (text table: 500k requests, 13.7 µs/EphID, 72.8k EphIDs/s, "
      "18x the peak AS demand of 3,888 sessions/s)");

  const bool smoke = bench::smoke_mode(argc, argv);
  std::size_t kRequests = smoke ? 256 : 20'000;
  const std::vector<std::size_t> workers = parse_workers(argc, argv,
                                                         &kRequests);

  Setup s;
  std::printf("AES backend: %s | hardware threads: %u\n",
              s.as.codec.backend(), std::thread::hardware_concurrency());

  // --- Demand side: peak session rate from the synthetic trace -------------
  trace::TraceConfig tc;
  tc.scale = 16;  // keep the bench quick; rates scale linearly
  const auto tstats = trace::TraceGenerator(tc).run();
  const double peak_demand = tc.day_peak_per_s;
  std::printf(
      "Synthetic 24h trace (scale 1/%u): %.1fM arrivals, %llu unique hosts, "
      "envelope peak %.0f sessions/s (sampled max %.0f x scale)\n",
      tc.scale, tstats.total_entries * tc.scale / 1e6,
      static_cast<unsigned long long>(tstats.unique_hosts) * tc.scale,
      peak_demand,
      static_cast<double>(tstats.peak_arrivals_per_s) * tc.scale);

  const auto requests = s.make_requests(kRequests, 1);
  const core::ExpTime now = s.loop.now_seconds();

  // --- Single-call baseline (no pool machinery at all) ----------------------
  const double ns_per_issue = bench::time_per_op_ns(
      std::max<std::size_t>(kRequests / 4, 1), [&](std::size_t i) {
        auto r = s.ms.issue_sealed(s.ctrl, requests[i % kRequests], now,
                                   s.rng);
        if (!r.ok()) std::abort();
      });
  const double us_single = ns_per_issue / 1000.0;
  const double rate_single = 1e9 / ns_per_issue;

  // --- ServicePool --workers sweep -------------------------------------------
  constexpr std::size_t kBurst = 256;
  std::vector<SweepPoint> sweep;
  for (const std::size_t w : workers) {
    services::ServicePool::Config cfg;
    cfg.threads = w;
    services::ServicePool pool(s.ms, nullptr, cfg);

    std::vector<services::ServicePool::IssueJob> jobs(kBurst);
    std::vector<Result<Bytes>> results(kBurst, Result<Bytes>(Errc::internal));

    auto run_all = [&](std::size_t total) {
      for (std::size_t done = 0; done < total; done += kBurst) {
        const std::size_t n = std::min(kBurst, total - done);
        for (std::size_t i = 0; i < n; ++i)
          jobs[i] = {s.ctrl, requests[(done + i) % kRequests]};
        pool.process_issuance({jobs.data(), n}, now, {results.data(), n});
        // Every job must have issued: a failed job short-circuits the
        // crypto pipeline and would silently inflate the recorded rate.
        for (std::size_t i = 0; i < n; ++i)
          if (!results[i].ok()) std::abort();
      }
    };

    run_all(std::max<std::size_t>(kRequests / 4, 1));  // warmup
    const std::uint64_t allocs0 = util::heap_alloc_count();
    const auto t0 = bench::Clock::now();
    run_all(kRequests);
    const double secs =
        std::chrono::duration<double>(bench::Clock::now() - t0).count();
    const std::uint64_t allocs1 = util::heap_alloc_count();

    SweepPoint pt;
    pt.workers = w;
    pt.rate_per_s = kRequests / secs;
    pt.allocs_per_request =
        static_cast<double>(allocs1 - allocs0) / kRequests;
    pt.speedup = pt.rate_per_s / rate_single;
    sweep.push_back(pt);
  }

  // --- The paper's table -------------------------------------------------------
  const SweepPoint* four = nullptr;
  for (const auto& pt : sweep)
    if (pt.workers == 4) four = &pt;
  const double rate_par = four ? four->rate_per_s : sweep.back().rate_per_s;
  const double t500k_par = 500'000.0 / rate_par;

  std::printf("\n%-44s %12s %12s\n", "metric", "paper", "measured");
  std::printf("%-44s %12s %12.1f\n", "per-EphID server time, 1 worker (us)",
              "-", us_single);
  std::printf("%-44s %12s %12.1f\n",
              "per-EphID effective time, 4 workers (us)", "13.7",
              1e6 / rate_par);
  std::printf("%-44s %12s %12.2f\n", "time for 500k EphIDs, 4 workers (s)",
              "6.9", t500k_par);
  std::printf("%-44s %12s %12.1f\n", "issuance rate, 1 worker (kEphID/s)",
              "-", rate_single / 1e3);
  std::printf("%-44s %12s %12.1f\n", "issuance rate, 4 workers (kEphID/s)",
              "72.8", rate_par / 1e3);
  std::printf("%-44s %12s %12.0f\n", "peak AS demand (sessions/s)", "3888",
              peak_demand);
  std::printf("%-44s %12s %12.1fx\n", "headroom: rate / peak demand", "18.7x",
              rate_par / peak_demand);

  std::printf("\nServicePool sweep (burst %zu, chunk %zu):\n", kBurst,
              services::ServicePool::Config().chunk_jobs);
  std::printf("%8s %16s %16s %10s\n", "workers", "EphIDs/s", "allocs/req",
              "speedup");
  for (const auto& pt : sweep)
    std::printf("%8zu %16.0f %16.2f %9.2fx\n", pt.workers, pt.rate_per_s,
                pt.allocs_per_request, pt.speedup);
  if (bench::single_core())
    std::printf("  WARNING: single hardware thread — the speedup column "
                "measures the scheduler, not the pool; no scaling is "
                "expected or asserted on this host\n");

  // The pooled reply build is an asserted contract (satellite of the
  // verified-flow-cache PR): issuance may not regress to per-request heap
  // churn.
  for (const auto& pt : sweep) {
    if (pt.allocs_per_request > kMaxAllocsPerRequest) {
      std::fprintf(stderr,
                   "FATAL: %zu-worker issuance allocated %.2f times per "
                   "request (ceiling %.1f)\n",
                   pt.workers, pt.allocs_per_request, kMaxAllocsPerRequest);
      return 1;
    }
  }

  // --- BENCH_e1.json (same role as BENCH_e2.json) ------------------------------
  bench::JsonFile json("BENCH_e1.json");
  if (json.ok()) {
    json.field("experiment", "E1 MS issuance (ServicePool)");
    json.field("requests", std::uint64_t{kRequests});
    json.machine_shape();
    json.provenance(404);  // Setup's ChaChaRng seed
    json.field("aes_backend", s.as.codec.backend());
    json.field("peak_demand_sessions_per_s", peak_demand, 0);
    json.field("single_call_us_per_ephid", us_single, 2);
    json.field("single_call_rate_per_s", rate_single, 0);
    json.field("allocs_per_request_ceiling", kMaxAllocsPerRequest, 1);
    json.begin_array("sweep");
    for (const auto& pt : sweep) {
      json.begin_object();
      json.field("workers", std::uint64_t{pt.workers});
      json.field("ephids_per_sec", pt.rate_per_s, 0);
      json.field("allocs_per_request", pt.allocs_per_request, 2);
      json.field("speedup", pt.speedup, 3);
      json.end_object();
    }
    json.end_array();
    if (json.close()) std::printf("  (baseline written to BENCH_e1.json)\n");
  }

  bench::print_footer(
      "issuance rate must exceed peak demand by a large factor (paper: "
      "18.7x); the worker sweep scales on multicore hosts (expect ~1x in a "
      "1-core container) and allocs/request stays flat across workers and "
      "under the asserted ceiling");
  return 0;
}

// Scenario driver — runs the deterministic Internet-scale scripts
// (src/scenario) and emits SCENARIO_*.json artifacts.
//
// Three canned scenarios:
//   internet_scale  ≥ 10⁶ hosts in ONE AS: provisioning, diurnal churn, a
//                   flash crowd, steady traffic. Asserts the compact HostDb
//                   holds the population at ≤ 200 B/host amortized.
//   attack_storms   the adversary reel: bogus-EphID flood, Fig-5 shutoff
//                   storm, mass-revocation waves, replay/tamper injection,
//                   with recovery traffic after each storm.
//   multi_as        the population spread over 100s of ASes with inter-AS
//                   traffic (source egress → transit → destination ingress).
//
// Determinism contract: every counter in the JSON is an exact function of
// (scenario, seed) — wall-clock figures (pps, shutoff latency) go to stdout
// only. --verify-determinism runs the scenario twice and fails unless the
// two JSON artifacts are byte-identical.
//
// Usage:
//   bench_scenario [--scenario=NAME] [--smoke] [--seed=N] [--hosts=N]
//                  [--json=PATH] [--verify-determinism] [--list] [--help]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/scenario.h"

using namespace apna;

namespace {

struct ScenarioInfo {
  const char* name;
  const char* what;
};

constexpr ScenarioInfo kScenarios[] = {
    {"internet_scale",
     "1M+ hosts in one AS: provisioning, churn, flash crowd, traffic"},
    {"attack_storms",
     "bogus-EphID flood, Fig-5 shutoff storm, revocation waves, replay"},
    {"multi_as", "population spread over 100s of ASes with inter-AS traffic"},
    {"dns_storm",
     "NXDOMAIN lookup flood against the DNS resolver (negative-cache bounds)"},
    {"kill_recover",
     "crash-safety: snapshot+journal, drop the world, recover bit-identical"},
};

bool known_scenario(const std::string& name) {
  for (const auto& s : kScenarios)
    if (name == s.name) return true;
  return false;
}

void print_scenarios(std::FILE* out) {
  for (const auto& s : kScenarios)
    std::fprintf(out, "  %-16s %s\n", s.name, s.what);
}

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: bench_scenario [--scenario=NAME] [--smoke] [--seed=N]\n"
               "                      [--hosts=N] [--json=PATH]\n"
               "                      [--verify-determinism] [--list]\n"
               "\n"
               "  --scenario=NAME       which canned script to run "
               "(default: internet_scale)\n"
               "  --smoke               tiny iteration counts (CI smoke "
               "runs)\n"
               "  --seed=N              RNG seed; counters are a function of "
               "(scenario, seed)\n"
               "  --hosts=N             population override (names for "
               "dns_storm)\n"
               "  --json=PATH           artifact path (default "
               "SCENARIO_<name>.json)\n"
               "  --verify-determinism  run twice, fail unless artifacts are "
               "byte-identical\n"
               "  --list                list the canned scenarios and exit\n"
               "\n"
               "scenarios:\n");
  print_scenarios(out);
}

struct Options {
  std::string scenario = "internet_scale";
  bool smoke = false;
  bool verify_determinism = false;
  std::uint64_t seed = 1;
  std::uint64_t hosts = 0;  // 0 → scenario default
  std::string json_path;    // empty → SCENARIO_<name>.json
};

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
    };
    if (a == "--help" || a == "-h") {
      print_usage(stdout);
      std::exit(0);
    } else if (a == "--list") {
      print_scenarios(stdout);
      std::exit(0);
    } else if (a == "--smoke") o.smoke = true;
    else if (a == "--verify-determinism") o.verify_determinism = true;
    else if (const char* v = val("--scenario=")) o.scenario = v;
    else if (const char* v = val("--seed=")) o.seed = std::strtoull(v, nullptr, 10);
    else if (const char* v = val("--hosts=")) o.hosts = std::strtoull(v, nullptr, 10);
    else if (const char* v = val("--json=")) o.json_path = v;
    else {
      std::fprintf(stderr, "unknown argument: %s\n\n", a.c_str());
      print_usage(stderr);
      std::exit(2);
    }
  }
  if (!known_scenario(o.scenario)) {
    std::fprintf(stderr, "unknown scenario: %s\n\nscenarios:\n",
                 o.scenario.c_str());
    print_scenarios(stderr);
    std::exit(2);
  }
  return o;
}

void fatal(const char* msg) {
  std::fprintf(stderr, "FATAL: %s\n", msg);
  std::exit(1);
}

/// Writes one phase's DETERMINISTIC fields (the wall_* fields stay out by
/// contract — see scenario.h).
void emit_phase(bench::JsonFile& json, const scenario::PhaseReport& r) {
  json.begin_object();
  json.field("name", r.name);
  json.field("kind", r.kind);
  json.field("packets", r.packets);
  json.field("joins", r.joins);
  json.field("leaves", r.leaves);
  json.field("shutoff_requests", r.shutoff_requests);
  json.field("revocations_applied", r.revocations_applied);
  json.field("forwarded_out", r.router.forwarded_out);
  json.field("total_drops", r.router.total_drops());
  json.field("drop_bad_ephid", r.router.drop_bad_ephid);
  json.field("drop_revoked", r.router.drop_revoked);
  json.field("drop_bad_mac", r.router.drop_bad_mac);
  json.field("drop_replayed", r.router.drop_replayed);
  json.field("cache_hits", r.cache.hits);
  json.field("cache_misses", r.cache.misses);
  json.field("cache_stale_gen", r.cache.stale_gen);
  json.field("cache_insertions", r.cache.insertions);
  json.field("cache_hit_rate", r.cache.hit_rate(), 4);
  json.field("rx_rejected", r.rx_rejected);
  json.field("rx_delivered", r.rx_delivered);
  json.field("aa_accepted", r.aa_accepted);
  json.field("aa_rejected", r.aa_rejected);
  json.field("aa_hid_escalations", r.aa_hid_escalations);
  json.field("epoch", r.epoch);
  json.field("live_hosts", r.live_hosts);
  json.field("revoked_entries", r.revoked_entries);
  json.field("host_db_bytes", r.host_db_bytes);
  json.field("host_db_bytes_per_host", r.host_db_bytes_per_host, 2);
  json.field("revocation_bytes", r.revocation_bytes);
  if (std::strcmp(r.kind, "dns_storm") == 0) {
    json.field("dns_lookups", r.dns_lookups);
    json.field("dns_cache_hits", r.dns_cache_hits);
    json.field("dns_negative_hits", r.dns_negative_hits);
    json.field("dns_zone_hits", r.dns_zone_hits);
    json.field("dns_nxdomain", r.dns_nxdomain);
    json.field("dns_negative_entries", r.dns_negative_entries);
    json.field("dns_negative_capacity", r.dns_negative_capacity);
    json.field("dns_recovery_hit_rate", r.dns_recovery_hit_rate, 4);
  }
  if (std::strcmp(r.kind, "kill_recover") == 0) {
    json.field("persist_records_appended", r.persist_records_appended);
    json.field("persist_snapshots_written", r.persist_snapshots_written);
    json.field("persist_snapshot_generation", r.persist_snapshot_generation);
    json.field("journal_records_replayed", r.journal_records_replayed);
    json.field("journal_bytes_discarded", r.journal_bytes_discarded);
    json.field("recovered_hosts", r.recovered_hosts);
    json.field("recovered_revocations", r.recovered_revocations);
    json.field("recovered_dns_records", r.recovered_dns_records);
    json.field("recovered_domain_blocks", r.recovered_domain_blocks);
    json.field("verdict_probes", r.verdict_probes);
    json.field("verdict_mismatches", r.verdict_mismatches);
  }
  json.end_object();
}

/// The dns_storm acceptance gate: NXDOMAIN floods must stay inside the
/// negative cache's bounded slice, and the positive hit rate must recover
/// after the storm.
void check_dns_bounds(const std::vector<scenario::PhaseReport>& reports) {
  for (const auto& r : reports) {
    if (std::strcmp(r.kind, "dns_storm") != 0) continue;
    if (r.dns_negative_entries > r.dns_negative_capacity) {
      std::fprintf(stderr,
                   "FATAL: phase %s holds %llu negative entries "
                   "(cap: %llu)\n",
                   r.name.c_str(),
                   static_cast<unsigned long long>(r.dns_negative_entries),
                   static_cast<unsigned long long>(r.dns_negative_capacity));
      std::exit(1);
    }
    if (r.dns_recovery_hit_rate < 0.5) {
      std::fprintf(stderr,
                   "FATAL: phase %s positive hit rate did not recover "
                   "(%.4f after the storm)\n",
                   r.name.c_str(), r.dns_recovery_hit_rate);
      std::exit(1);
    }
  }
}

/// The kill_recover acceptance gate: the recovered world must answer every
/// probed verdict bit-identically, and the phase must actually have probed
/// something (a zero-probe "pass" is vacuous).
void check_recovery(const std::vector<scenario::PhaseReport>& reports) {
  for (const auto& r : reports) {
    if (std::strcmp(r.kind, "kill_recover") != 0) continue;
    if (r.verdict_probes == 0) {
      std::fprintf(stderr, "FATAL: phase %s probed nothing across the kill\n",
                   r.name.c_str());
      std::exit(1);
    }
    if (r.verdict_mismatches != 0) {
      std::fprintf(stderr,
                   "FATAL: phase %s: %llu of %llu verdicts changed across "
                   "the kill/recover\n",
                   r.name.c_str(),
                   static_cast<unsigned long long>(r.verdict_mismatches),
                   static_cast<unsigned long long>(r.verdict_probes));
      std::exit(1);
    }
  }
}

void print_phase_table(const std::vector<scenario::PhaseReport>& reports) {
  std::printf("%-26s %10s %10s %9s %9s %8s %10s %8s\n", "phase", "packets",
              "fwd", "drops", "hit_rate", "epoch", "live", "B/host");
  for (const auto& r : reports) {
    std::printf("%-26s %10llu %10llu %9llu %8.1f%% %8llu %10llu %8.1f",
                r.name.c_str(),
                static_cast<unsigned long long>(r.packets),
                static_cast<unsigned long long>(r.router.forwarded_out),
                static_cast<unsigned long long>(r.router.total_drops()),
                100.0 * r.cache.hit_rate(),
                static_cast<unsigned long long>(r.epoch),
                static_cast<unsigned long long>(r.live_hosts),
                r.host_db_bytes_per_host);
    if (r.wall_pps > 0) std::printf("  %8.2f Mpps", r.wall_pps / 1e6);
    if (r.wall_shutoff_p99_us > 0)
      std::printf("  shutoff p50/p99 %.0f/%.0f us", r.wall_shutoff_p50_us,
                  r.wall_shutoff_p99_us);
    std::printf("  (%.2fs)\n", r.wall_seconds);
  }
}

/// The hard acceptance gate: at 10⁶+ registered hosts the compact HostDb
/// must amortize to ≤ 200 bytes per host, schedule cache and index included.
void check_memory_budget(const std::vector<scenario::PhaseReport>& reports) {
  for (const auto& r : reports) {
    if (r.live_hosts >= 1'000'000 && r.host_db_bytes_per_host > 200.0) {
      std::fprintf(stderr,
                   "FATAL: phase %s holds %llu hosts at %.1f B/host "
                   "(budget: 200)\n",
                   r.name.c_str(),
                   static_cast<unsigned long long>(r.live_hosts),
                   r.host_db_bytes_per_host);
      std::exit(1);
    }
  }
}

void run_engine_scenario(const Options& o, const std::string& json_path) {
  scenario::Engine::Config cfg;
  cfg.seed = o.seed;
  std::vector<scenario::Phase> script;
  std::uint64_t hosts = 0;
  if (o.scenario == "internet_scale") {
    hosts = o.hosts ? o.hosts : 1'000'000;
    script = scenario::internet_scale_script(hosts, o.smoke ? 8 : 64);
  } else if (o.scenario == "dns_storm") {
    hosts = o.hosts ? o.hosts : (o.smoke ? 20'000 : 200'000);
    script = scenario::dns_storm_script(hosts, o.smoke);
  } else if (o.scenario == "kill_recover") {
    // Acceptance floor: the full run provisions 10⁵+ hosts before the kill.
    hosts = o.hosts ? o.hosts : (o.smoke ? 20'000 : 100'000);
    cfg.persist = true;
    script = scenario::kill_recover_script(hosts, o.smoke);
  } else {
    hosts = o.hosts ? o.hosts : (o.smoke ? 20'000 : 200'000);
    script = scenario::attack_storms_script(hosts, o.smoke);
  }

  scenario::Engine engine(cfg);
  const auto reports = engine.run_script(script);
  print_phase_table(reports);
  if (o.scenario == "internet_scale") check_memory_budget(reports);
  if (o.scenario == "dns_storm") check_dns_bounds(reports);
  if (o.scenario == "kill_recover") check_recovery(reports);

  bench::JsonFile json(json_path);
  if (!json.ok()) fatal("cannot open JSON output");
  json.field("experiment", ("scenario_" + o.scenario).c_str());
  json.machine_shape();
  json.provenance(o.seed);
  json.field("scenario", o.scenario);
  json.field("smoke", o.smoke);
  json.field("hosts_param", hosts);
  json.begin_array("phases");
  for (const auto& r : reports) emit_phase(json, r);
  json.end_array();
  json.field("final_live_hosts", reports.back().live_hosts);
  json.field("final_bytes_per_host", reports.back().host_db_bytes_per_host, 2);
  json.field("final_epoch", reports.back().epoch);
  if (!json.close()) fatal("JSON close failed");
}

void run_multi_as_scenario(const Options& o, const std::string& json_path) {
  scenario::MultiAsConfig cfg;
  cfg.seed = o.seed;
  cfg.as_count = o.smoke ? 100 : 200;
  cfg.hosts_per_as = o.hosts ? o.hosts : (o.smoke ? 1'000 : 5'000);
  cfg.bursts = o.smoke ? 16 : 128;
  const auto rep = scenario::run_multi_as(cfg);

  std::printf("%zu ASes x %llu hosts: %llu hosts total, %.1f B/host mean "
              "(%.1f max)\n",
              rep.as_count,
              static_cast<unsigned long long>(cfg.hosts_per_as),
              static_cast<unsigned long long>(rep.total_hosts),
              rep.mean_bytes_per_host, rep.max_bytes_per_host);
  std::printf("traffic: %llu egress passes, %llu transits, %llu deliveries, "
              "%llu drops; %llu churned (%.2fs)\n",
              static_cast<unsigned long long>(rep.forwarded_out),
              static_cast<unsigned long long>(rep.transited),
              static_cast<unsigned long long>(rep.delivered_in),
              static_cast<unsigned long long>(rep.total_drops),
              static_cast<unsigned long long>(rep.churned), rep.wall_seconds);
  if (rep.delivered_in == 0) fatal("multi-AS traffic delivered nothing");

  bench::JsonFile json(json_path);
  if (!json.ok()) fatal("cannot open JSON output");
  json.field("experiment", "scenario_multi_as");
  json.machine_shape();
  json.provenance(o.seed);
  json.field("scenario", o.scenario);
  json.field("smoke", o.smoke);
  json.field("as_count", static_cast<std::uint64_t>(rep.as_count));
  json.field("total_hosts", rep.total_hosts);
  json.field("total_host_db_bytes", rep.total_host_db_bytes);
  json.field("mean_bytes_per_host", rep.mean_bytes_per_host, 2);
  json.field("max_bytes_per_host", rep.max_bytes_per_host, 2);
  json.field("forwarded_out", rep.forwarded_out);
  json.field("transited", rep.transited);
  json.field("delivered_in", rep.delivered_in);
  json.field("total_drops", rep.total_drops);
  json.field("churned", rep.churned);
  if (!json.close()) fatal("JSON close failed");
}

void run_once(const Options& o, const std::string& json_path) {
  if (o.scenario == "multi_as") run_multi_as_scenario(o, json_path);
  else run_engine_scenario(o, json_path);
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) fatal("cannot reopen JSON artifact");
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);  // rejects unknown scenarios
  const std::string json_path =
      o.json_path.empty() ? "SCENARIO_" + o.scenario + ".json" : o.json_path;

  bench::print_header("Scenario engine — " + o.scenario,
                      "§VIII scale + §VI attack-resistance properties");
  run_once(o, json_path);

  if (o.verify_determinism) {
    // Byte-identical re-run: a fresh Engine from the same seed must emit
    // the same artifact. Catches any nondeterminism that leaks into the
    // counters (iteration order, wall-clock contamination, uninitialized
    // reads).
    const std::string second = json_path + ".rerun";
    Options o2 = o;
    o2.json_path = second;
    run_once(o2, second);
    const bool same = slurp(json_path) == slurp(second);
    std::remove(second.c_str());
    if (!same) fatal("determinism violation: re-run JSON differs");
    std::printf("determinism verified: re-run artifact is byte-identical\n");
  }

  bench::print_footer(
      "scenario completed; deterministic counters written to " + json_path);
  return 0;
}

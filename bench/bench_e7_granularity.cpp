// E7 — EphID granularity ablation (§VIII-A).
// Metric: EphIDs consumed, linkable flow-pair fraction and shutoff blast
// radius per granularity on a common synthetic-trace workload.
//
// The paper discusses four granularities qualitatively; this experiment
// quantifies the trade-off on a common workload (flows drawn from the
// synthetic trace): EphIDs consumed (issuance cost), sender-flow
// linkability (fraction of flow pairs sharing a source EphID — what a §II-B
// observer can link), and shutoff blast radius (flows killed when one
// EphID is revoked).
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "core/ephid.h"
#include "host/ephid_pool.h"

using namespace apna;

namespace {

struct Workload {
  struct Flow {
    std::string app;
    std::string id;
    int packets;
  };
  std::vector<Flow> flows;
};

Workload make_workload(int n_flows) {
  // 4 applications with skewed flow counts, a few packets per flow.
  Workload w;
  const char* apps[] = {"web", "mail", "video", "iot"};
  crypto::ChaChaRng rng(5);
  for (int i = 0; i < n_flows; ++i) {
    const char* app = apps[rng.uniform(4)];
    w.flows.push_back({app, "flow-" + std::to_string(i),
                       static_cast<int>(1 + rng.uniform(20))});
  }
  return w;
}

struct Outcome {
  std::size_t ephids_used = 0;
  double linkable_pair_fraction = 0;  // flow pairs sharing a source EphID
  std::size_t max_blast_radius = 0;   // flows killed by one revocation
  double issuance_us = 0;             // total minting cost
};

Outcome evaluate(host::Granularity g, const Workload& w, double us_per_issue) {
  crypto::ChaChaRng rng(6);
  core::EphIdCodec codec(rng.bytes(16));
  const core::ExpTime now = 1'700'000'000;

  host::EphIdPool pool;
  // Provision generously; per-packet rotation cycles over 32 EphIDs.
  const std::size_t provision =
      g == host::Granularity::per_host ? 1
      : g == host::Granularity::per_application ? 4
      : g == host::Granularity::per_flow ? w.flows.size()
      : 32;
  for (std::size_t i = 0; i < provision; ++i) {
    core::EphIdKeyPair kp = core::EphIdKeyPair::from_seed(rng.bytes(32));
    core::EphIdCertificate cert;
    cert.ephid = codec.issue(7, now + 900, rng);
    cert.exp_time = now + 900;
    cert.pub = kp.pub;
    pool.add(std::move(kp), std::move(cert));
  }

  // Assign flows → EphIDs via the pool policy; track which EphID each flow
  // used (for per-packet, every EphID a flow's packets used).
  std::map<std::string, std::vector<std::string>> flow_ephids;
  std::uint64_t packet_seq = 0;
  std::size_t picks_failed = 0;
  for (const auto& f : w.flows) {
    for (int p = 0; p < f.packets; ++p) {
      auto* e = pool.pick(g, f.app, f.id, packet_seq++, now);
      if (!e) {
        ++picks_failed;
        continue;
      }
      flow_ephids[f.id].push_back(e->cert.ephid.hex());
    }
  }
  (void)picks_failed;

  // EphIDs actually used.
  std::map<std::string, std::vector<std::string>> ephid_flows;
  for (const auto& [flow, ephids] : flow_ephids)
    for (const auto& e : ephids) {
      auto& v = ephid_flows[e];
      if (v.empty() || v.back() != flow) v.push_back(flow);
    }

  Outcome out;
  out.ephids_used = ephid_flows.size();
  out.issuance_us = static_cast<double>(out.ephids_used) * us_per_issue;

  // Linkability: fraction of flow PAIRS that share at least one source
  // EphID (the observer links them to a common sender).
  std::size_t linkable = 0;
  const auto& flows = w.flows;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (std::size_t j = i + 1; j < flows.size(); ++j) {
      const auto& ei = flow_ephids[flows[i].id];
      const auto& ej = flow_ephids[flows[j].id];
      bool share = false;
      for (const auto& a : ei) {
        for (const auto& b : ej)
          if (a == b) {
            share = true;
            break;
          }
        if (share) break;
      }
      if (share) ++linkable;
    }
  }
  const double pairs = flows.size() * (flows.size() - 1) / 2.0;
  out.linkable_pair_fraction = pairs > 0 ? linkable / pairs : 0;

  // Blast radius: most flows disrupted by revoking a single EphID.
  for (const auto& [e, fl] : ephid_flows)
    out.max_blast_radius = std::max(out.max_blast_radius, fl.size());
  return out;
}

}  // namespace

int main() {
  bench::print_header("E7 — EphID granularity ablation",
                      "§VIII-A: per-host / per-application / per-flow / "
                      "per-packet trade-offs");

  // Per-issuance cost measured on the Fig 6 construction.
  crypto::ChaChaRng rng(7);
  core::EphIdCodec codec(rng.bytes(16));
  const double issue_ns = bench::time_per_op_ns(50'000, [&](std::size_t i) {
    codec.issue_with_iv(7, 1'700'000'900, static_cast<std::uint32_t>(i));
  });
  const double us_per_issue = issue_ns / 1000.0;

  const Workload w = make_workload(200);
  std::printf("workload: %zu flows across 4 applications; EphID mint cost "
              "%.2f us (codec only)\n\n",
              w.flows.size(), us_per_issue);
  std::printf("%-16s %12s %18s %14s %16s\n", "granularity", "EphIDs",
              "linkable pairs", "blast radius", "mint cost (us)");

  for (auto g : {host::Granularity::per_host,
                 host::Granularity::per_application,
                 host::Granularity::per_flow,
                 host::Granularity::per_packet}) {
    const Outcome o = evaluate(g, w, us_per_issue);
    std::printf("%-16s %12zu %17.1f%% %14zu %16.1f\n",
                host::granularity_name(g), o.ephids_used,
                o.linkable_pair_fraction * 100, o.max_blast_radius,
                o.issuance_us);
  }

  std::printf(
      "\nNotes: per-packet cycles over a 32-EphID pool (a truly unique\n"
      "EphID per packet needs the demux machinery of [23], §VIII-A) — its\n"
      "linkability is an upper bound. Per-flow gives 0%% linkable pairs and\n"
      "blast radius 1 at a per-flow minting cost, the paper's recommended\n"
      "operating point.\n");

  bench::print_footer(
      "monotone trade-off: privacy (linkability↓, blast radius↓) costs "
      "EphID issuance; per-flow reaches 0% linkability at ~200 mints");
  return 0;
}

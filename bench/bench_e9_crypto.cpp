// E9 — Crypto-primitive ablation (§IV-A / §V design choices).
// Metric: throughput (bytes/cycle, google-benchmark) of AES backends, the
// three AEAD suites, X25519 and Ed25519 across payload sizes.
//
// Compares the building blocks the paper commits to: AES (hardware
// dispatch), the three CCA-secure payload suites (GCM [27] vs the
// Encrypt-then-MAC composition [7] vs ChaCha20-Poly1305), Curve25519 key
// exchange and ed25519 signatures (§V-A2), across payload sizes.
#include <benchmark/benchmark.h>

#include "core/ephid.h"
#include "crypto/aead.h"
#include "crypto/aes.h"
#include "crypto/ed25519.h"
#include "crypto/hmac.h"
#include "crypto/modes.h"
#include "crypto/rng.h"
#include "crypto/sha2.h"
#include "crypto/x25519.h"

using namespace apna;
using namespace apna::crypto;

namespace {

ChaChaRng& rng() {
  static ChaChaRng r(2718);
  return r;
}

void BM_AesBlock(benchmark::State& state) {
  Aes128 aes(rng().bytes(16));
  std::uint8_t block[16] = {};
  for (auto _ : state) {
    aes.encrypt_block(block, block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
  state.SetLabel(aes.backend());
}
BENCHMARK(BM_AesBlock);

void BM_AesCtr(benchmark::State& state) {
  Aes128 aes(rng().bytes(16));
  Bytes iv = rng().bytes(16);
  Bytes data = rng().bytes(state.range(0));
  Bytes out(data.size());
  for (auto _ : state) {
    aes_ctr_xcrypt(aes, iv.data(), data, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(64)->Arg(1460);

void BM_Cmac(benchmark::State& state) {
  AesCmac mac(rng().bytes(16));
  Bytes data = rng().bytes(state.range(0));
  for (auto _ : state) {
    auto t = mac.mac(data);
    benchmark::DoNotOptimize(t);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Cmac)->Arg(48)->Arg(128)->Arg(1460);

void BM_AeadSeal(benchmark::State& state) {
  const auto suite = static_cast<AeadSuite>(state.range(0));
  auto aead = Aead::create(suite, rng().bytes(32));
  Bytes nonce = rng().bytes(12);
  Bytes aad = rng().bytes(48);
  Bytes pt = rng().bytes(state.range(1));
  for (auto _ : state) {
    auto ct = aead->seal(nonce, aad, pt);
    benchmark::DoNotOptimize(ct.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(1));
  state.SetLabel(aead_suite_name(suite));
}
BENCHMARK(BM_AeadSeal)
    ->Args({1, 64})->Args({1, 1460})
    ->Args({2, 64})->Args({2, 1460})
    ->Args({3, 64})->Args({3, 1460});

void BM_AeadOpen(benchmark::State& state) {
  const auto suite = static_cast<AeadSuite>(state.range(0));
  auto aead = Aead::create(suite, rng().bytes(32));
  Bytes nonce = rng().bytes(12);
  Bytes pt = rng().bytes(state.range(1));
  const Bytes ct = aead->seal(nonce, {}, pt);
  for (auto _ : state) {
    auto out = aead->open(nonce, {}, ct);
    if (!out) std::abort();
    benchmark::DoNotOptimize(out->data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(1));
  state.SetLabel(aead_suite_name(suite));
}
BENCHMARK(BM_AeadOpen)
    ->Args({1, 1460})->Args({2, 1460})->Args({3, 1460});

void BM_Sha256(benchmark::State& state) {
  Bytes data = rng().bytes(state.range(0));
  for (auto _ : state) {
    auto d = Sha256::hash(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1460);

void BM_HkdfDerive(benchmark::State& state) {
  Bytes ikm = rng().bytes(32);
  for (auto _ : state) {
    auto k = derive_key32(ikm, "bench-label");
    benchmark::DoNotOptimize(k);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HkdfDerive);

void BM_X25519Shared(benchmark::State& state) {
  auto a = X25519KeyPair::generate(rng());
  auto b = X25519KeyPair::generate(rng());
  for (auto _ : state) {
    auto s = x25519_shared(a.priv, b.pub);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("one per connection establishment (§IV-D1)");
}
BENCHMARK(BM_X25519Shared);

void BM_Ed25519Sign(benchmark::State& state) {
  auto kp = Ed25519KeyPair::generate(rng());
  Bytes msg = rng().bytes(137);  // ~certificate TBS size
  for (auto _ : state) {
    auto sig = kp.sign(msg);
    benchmark::DoNotOptimize(sig);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("one per issued certificate (Fig 3)");
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  auto kp = Ed25519KeyPair::generate(rng());
  Bytes msg = rng().bytes(137);
  const auto sig = kp.sign(msg);
  for (auto _ : state) {
    bool ok = ed25519_verify(kp.pub, msg, sig);
    if (!ok) std::abort();
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("one per certificate validation");
}
BENCHMARK(BM_Ed25519Verify);

void BM_EphIdRoundtrip(benchmark::State& state) {
  ChaChaRng r(3);
  core::EphIdCodec codec(r.bytes(16));
  std::uint32_t iv = 0;
  for (auto _ : state) {
    const auto e = codec.issue_with_iv(7, 1'700'000'900, ++iv);
    auto p = codec.open(e);
    if (!p.ok()) std::abort();
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(codec.backend());
}
BENCHMARK(BM_EphIdRoundtrip);

}  // namespace

BENCHMARK_MAIN();

// E9 — Crypto-primitive ablation (§IV-A / §V design choices).
//
// Self-timed (bench_util.h) so it always builds — no google-benchmark
// dependency. Measures the primitives the paper's budgets rest on, with a
// per-TIER delta table for everything the runtime dispatcher widens:
//
//   * AES: single block, bulk encrypt_blocks, and the 16-chain CMAC driver
//     (aes_cmac_many) on every tier compiled into this binary and
//     supported by this CPU — soft / aesni / avx2 / vaes_avx512. Tiers the
//     host cannot run are SKIPPED with a printed notice, never a crash.
//   * ChaCha20: the wide keystream path (8-way AVX2 / 4-way SSE2 behind
//     chacha20_xcrypt) against the scalar block function, plus the
//     ChaCha20-Poly1305 issuance AEAD end to end.
//   * The three CCA-secure payload suites (§IV-A) at MTU size.
//   * Ed25519: sign, scalar verify, and ed25519_verify_batch at the
//     ServicePool chunk widths — the shared-doubling speedup the MS
//     cert-chain check amortizes (Fig 3).
//   * HMAC-DRBG: instantiate + fill against ChaChaRng (the per-request
//     generator swap in ServicePool).
//
// Emits BENCH_e9.json (machine_shape records the active tier; provenance
// the seed/commit). The checked-in baseline at the repo root is
// regenerated manually from a full run. Smoke runs (--smoke, wired as the
// bench_smoke_e9 ctest entry) shrink iteration counts but still execute
// every tier and assert the cross-tier/batch-vs-scalar equivalence gates.
//
// Usage:
//   bench_e9_crypto [--smoke] [--seed=N] [--json=PATH]
// Force a tier with APNA_CRYPTO_BACKEND=soft|aesni|avx2|vaes_avx512.
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/ephid.h"
#include "crypto/aead.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/drbg.h"
#include "crypto/ed25519.h"
#include "crypto/modes.h"
#include "crypto/rng.h"
#include "crypto/x25519.h"

using namespace apna;
using namespace apna::crypto;

namespace {

struct Options {
  bool smoke = false;
  std::uint64_t seed = 2718;
  std::string json_path = "BENCH_e9.json";
};

Options parse_args(int argc, char** argv) {
  Options o;
  o.smoke = bench::smoke_mode(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
    };
    if (a == "--smoke") continue;
    if (const char* v = val("--seed=")) o.seed = std::strtoull(v, nullptr, 10);
    else if (const char* v = val("--json=")) o.json_path = v;
    else {
      std::fprintf(stderr,
                   "unknown argument: %s\n"
                   "usage: bench_e9_crypto [--smoke] [--seed=N] [--json=PATH]\n",
                   a.c_str());
      std::exit(2);
    }
  }
  return o;
}

void fatal(const char* msg) {
  std::fprintf(stderr, "FATAL: %s\n", msg);
  std::exit(1);
}

double mbps(double ns_per_op, double bytes_per_op) {
  return bytes_per_op / ns_per_op * 1e9 / 1e6;
}

/// Tiers this binary can actually run on this CPU, narrowest first.
std::vector<Aes128::Backend> runnable_tiers() {
  std::vector<Aes128::Backend> out = {Aes128::Backend::soft};
  for (const Aes128::Backend b :
       {Aes128::Backend::aesni, Aes128::Backend::avx2,
        Aes128::Backend::vaes_avx512}) {
    if (Aes128::resolve_backend(b) == b)
      out.push_back(b);
    else
      std::printf("  (tier %s unsupported on this host — skipped)\n",
                  Aes128::backend_name(b));
  }
  return out;
}

struct TierRow {
  const char* tier;
  double block_ns;
  double bulk_mbps;
  double cmac_mbps;
};

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  ChaChaRng rng(o.seed);

  bench::print_header(
      "E9 — crypto primitive ablation",
      "§IV-A payload suites, §V-A1 AES-only data plane, §V-A2 asymmetric "
      "budget; tier deltas for the runtime SIMD dispatch");
  std::printf("active AES backend: %s\n",
              Aes128::backend_name(Aes128::best_backend()));

  const std::size_t kBulkBlocks = 1024;  // 16 KiB sweeps
  const std::size_t aes_iters = o.smoke ? 200 : 20'000;
  const std::size_t asym_iters = o.smoke ? 20 : 2'000;

  // ---- AES tier table ---------------------------------------------------------
  const Bytes aes_key = rng.bytes(16);
  const Bytes bulk_in = rng.bytes(kBulkBlocks * 16);
  Bytes bulk_out(bulk_in.size());
  Bytes soft_bulk;  // cross-tier equivalence gate

  std::vector<TierRow> tier_rows;
  std::printf("\nAES tiers (bulk = %zu blocks, cmac = 16-lane driver):\n",
              kBulkBlocks);
  std::printf("%12s %14s %14s %14s %12s\n", "tier", "block (ns)",
              "bulk (MB/s)", "cmac16 (MB/s)", "bulk vs soft");
  double soft_bulk_mbps = 0;
  for (const Aes128::Backend tier : runnable_tiers()) {
    Aes128 aes(aes_key, tier);
    std::uint8_t block[16] = {};
    const double block_ns = bench::time_per_op_ns(
        aes_iters * 64, [&](std::size_t) { aes.encrypt_block(block, block); });
    const double bulk_ns = bench::time_per_op_ns(aes_iters, [&](std::size_t) {
      aes.encrypt_blocks(bulk_in.data(), bulk_out.data(), kBulkBlocks);
    });
    if (tier == Aes128::Backend::soft)
      soft_bulk = bulk_out;
    else if (bulk_out != soft_bulk)
      fatal("tier output differs from soft encrypt_blocks");

    // 16 same-tier CMAC jobs over MTU-ish extents through aes_cmac_many.
    std::vector<AesCmac> keys;
    std::vector<Bytes> msgs;
    for (int j = 0; j < 16; ++j) {
      keys.emplace_back(rng.bytes(16), tier);
      msgs.push_back(rng.bytes(1460));
    }
    std::vector<CmacJob> jobs;
    for (int j = 0; j < 16; ++j) jobs.push_back(CmacJob{&keys[j], msgs[j], {}});
    std::array<std::uint8_t, 16> tags[16];
    const double cmac_ns = bench::time_per_op_ns(
        aes_iters / 8 + 1, [&](std::size_t) { aes_cmac_many(jobs, tags); });

    TierRow row{aes.backend(), block_ns, mbps(bulk_ns, 16.0 * kBulkBlocks),
                mbps(cmac_ns, 16.0 * 1460)};
    if (tier == Aes128::Backend::soft) soft_bulk_mbps = row.bulk_mbps;
    std::printf("%12s %14.1f %14.1f %14.1f %11.2fx\n", row.tier, row.block_ns,
                row.bulk_mbps, row.cmac_mbps, row.bulk_mbps / soft_bulk_mbps);
    tier_rows.push_back(row);
  }

  // ---- ChaCha20: wide keystream vs scalar blocks ------------------------------
  const Bytes cc_key = rng.bytes(32);
  const Bytes cc_nonce = rng.bytes(12);
  const Bytes cc_in = rng.bytes(16 * 1024);
  Bytes cc_out(cc_in.size());
  const double cc_wide_ns = bench::time_per_op_ns(aes_iters, [&](std::size_t) {
    chacha20_xcrypt(cc_key.data(), 1, cc_nonce.data(), cc_in, cc_out);
  });
  // Scalar reference: block function + XOR, the path `soft` forces.
  const double cc_scalar_ns =
      bench::time_per_op_ns(aes_iters / 4 + 1, [&](std::size_t) {
        std::uint8_t ks[64];
        for (std::size_t off = 0; off < cc_in.size(); off += 64) {
          chacha20_block(cc_key.data(),
                         1 + static_cast<std::uint32_t>(off / 64),
                         cc_nonce.data(), ks);
          for (std::size_t i = 0; i < 64; ++i)
            cc_out[off + i] = static_cast<std::uint8_t>(cc_in[off + i] ^ ks[i]);
        }
      });
  const double cc_wide_mbps = mbps(cc_wide_ns, (double)cc_in.size());
  const double cc_scalar_mbps = mbps(cc_scalar_ns, (double)cc_in.size());
  std::printf("\nChaCha20 keystream (16 KiB): wide %.1f MB/s, scalar %.1f "
              "MB/s (%.2fx)\n",
              cc_wide_mbps, cc_scalar_mbps, cc_wide_mbps / cc_scalar_mbps);

  // ---- AEAD suites at MTU size (§IV-A "any CCA-secure scheme") ---------------
  struct AeadRow {
    const char* suite;
    double seal_mbps;
    double open_mbps;
  };
  std::vector<AeadRow> aead_rows;
  std::printf("\nAEAD suites (1460-byte payload, 48-byte AAD):\n");
  std::printf("%24s %14s %14s\n", "suite", "seal (MB/s)", "open (MB/s)");
  const Bytes aead_key = rng.bytes(32);
  const Bytes nonce12 = rng.bytes(12);
  const Bytes aad = rng.bytes(48);
  const Bytes payload = rng.bytes(1460);
  for (const auto suite : {AeadSuite::aes128_gcm, AeadSuite::aes128_ctr_cmac,
                           AeadSuite::chacha20_poly1305}) {
    auto aead = Aead::create(suite, aead_key);
    const Bytes sealed = aead->seal(nonce12, aad, payload);
    const double seal_ns = bench::time_per_op_ns(aes_iters, [&](std::size_t) {
      auto ct = aead->seal(nonce12, aad, payload);
      if (ct.empty()) fatal("seal failed");
    });
    const double open_ns = bench::time_per_op_ns(aes_iters, [&](std::size_t) {
      auto pt = aead->open(nonce12, aad, sealed);
      if (!pt) fatal("open failed");
    });
    AeadRow row{aead_suite_name(suite), mbps(seal_ns, 1460),
                mbps(open_ns, 1460)};
    std::printf("%24s %14.1f %14.1f\n", row.suite, row.seal_mbps,
                row.open_mbps);
    aead_rows.push_back(row);
  }

  // ---- Ed25519: scalar vs batch at the ServicePool chunk widths --------------
  auto kp = Ed25519KeyPair::generate(rng);
  const Bytes msg137 = rng.bytes(137);  // ~certificate TBS size
  const auto sig = kp.sign(msg137);
  const double sign_ns = bench::time_per_op_ns(
      asym_iters, [&](std::size_t) {
        auto s = kp.sign(msg137);
        if (s[0] != sig[0]) fatal("non-deterministic signature");
      });
  const double verify_ns = bench::time_per_op_ns(asym_iters, [&](std::size_t) {
    if (!ed25519_verify(kp.pub, msg137, sig)) fatal("verify failed");
  });
  std::printf("\nEd25519: sign %.1f µs, scalar verify %.1f µs\n",
              sign_ns / 1e3, verify_ns / 1e3);

  struct BatchRow {
    std::uint64_t width;
    double per_sig_us;
    double speedup;
  };
  std::vector<BatchRow> batch_rows;
  std::printf("%12s %18s %12s\n", "batch", "verify/sig (µs)", "vs scalar");
  for (const std::size_t width : {4u, 16u, 64u}) {
    std::vector<Ed25519PublicKey> pubs;
    std::vector<Bytes> msgs;
    std::vector<Ed25519Signature> sigs;
    for (std::size_t i = 0; i < width; ++i) {
      Ed25519Seed seed{};
      rng.fill(seed);
      const auto pub = ed25519_public_key(seed);
      Bytes m = rng.bytes(137);
      sigs.push_back(ed25519_sign(seed, pub, m));
      pubs.push_back(pub);
      msgs.push_back(std::move(m));
    }
    std::vector<Ed25519BatchItem> items;
    for (std::size_t i = 0; i < width; ++i)
      items.push_back({&pubs[i], msgs[i], &sigs[i]});
    std::vector<char> ok(width);
    HmacDrbg zrng(o.seed, width);
    const double batch_ns = bench::time_per_op_ns(
        asym_iters / width + 1, [&](std::size_t) {
          auto out = std::make_unique<bool[]>(width);
          if (!ed25519_verify_batch({items.data(), items.size()}, out.get(),
                                    zrng))
            fatal("batch rejected an all-valid chunk");
        });
    BatchRow row{width, batch_ns / width / 1e3,
                 verify_ns / (batch_ns / width)};
    std::printf("%12llu %18.1f %11.2fx\n",
                static_cast<unsigned long long>(row.width), row.per_sig_us,
                row.speedup);
    batch_rows.push_back(row);
  }

  // ---- X25519 (one per connection establishment, §IV-D1) ---------------------
  auto xa = X25519KeyPair::generate(rng);
  auto xb = X25519KeyPair::generate(rng);
  const double x25519_ns = bench::time_per_op_ns(asym_iters, [&](std::size_t) {
    auto s = x25519_shared(xa.priv, xb.pub);
    if (s[0] == 0 && s[31] == 0) fatal("degenerate shared secret");
  });
  std::printf("\nX25519 shared secret: %.1f µs\n", x25519_ns / 1e3);

  // ---- DRBGs: the ServicePool per-request generator ---------------------------
  std::array<std::uint8_t, 32> rnd{};
  const double drbg_inst_ns = bench::time_per_op_ns(
      aes_iters, [&](std::size_t i) {
        HmacDrbg d(o.seed, i);
        d.fill(rnd);
      });
  HmacDrbg drbg(o.seed, 1);
  const double drbg_fill_ns = bench::time_per_op_ns(
      aes_iters, [&](std::size_t) { drbg.fill(rnd); });
  ChaChaRng crng(o.seed);
  const double chacha_fill_ns = bench::time_per_op_ns(
      aes_iters, [&](std::size_t) { crng.fill(rnd); });
  std::printf("\nHMAC-DRBG: instantiate+32B %.0f ns, 32B fill %.0f ns "
              "(ChaChaRng fill: %.0f ns)\n",
              drbg_inst_ns, drbg_fill_ns, chacha_fill_ns);

  // ---- EphID codec roundtrip (the E6 primitive, tier-sensitive) --------------
  core::EphIdCodec codec(rng.bytes(16));
  std::uint32_t iv = 0;
  const double ephid_ns = bench::time_per_op_ns(aes_iters, [&](std::size_t) {
    const auto e = codec.issue_with_iv(7, 1'700'000'900, ++iv);
    if (!codec.open(e).ok()) fatal("EphID roundtrip failed");
  });
  std::printf("EphID issue+open roundtrip: %.0f ns (%s)\n", ephid_ns,
              codec.backend());

  // ---- BENCH_e9.json ----------------------------------------------------------
  bench::JsonFile json(o.json_path);
  if (json.ok()) {
    json.field("experiment", "e9_crypto_primitives");
    json.machine_shape();
    json.provenance(o.seed);
    json.field("smoke", o.smoke);
    json.begin_array("aes_tiers");
    for (const auto& r : tier_rows) {
      json.begin_object();
      json.field("tier", r.tier);
      json.field("block_ns", r.block_ns, 1);
      json.field("bulk_mb_s", r.bulk_mbps, 1);
      json.field("cmac16_mb_s", r.cmac_mbps, 1);
      json.field("bulk_speedup_vs_soft", r.bulk_mbps / soft_bulk_mbps);
      json.end_object();
    }
    json.end_array();
    json.begin_array("chacha20");
    json.begin_object();
    json.field("bytes", std::uint64_t{16 * 1024});
    json.field("wide_mb_s", cc_wide_mbps, 1);
    json.field("scalar_mb_s", cc_scalar_mbps, 1);
    json.field("speedup", cc_wide_mbps / cc_scalar_mbps);
    json.end_object();
    json.end_array();
    json.begin_array("aead_mtu");
    for (const auto& r : aead_rows) {
      json.begin_object();
      json.field("suite", r.suite);
      json.field("seal_mb_s", r.seal_mbps, 1);
      json.field("open_mb_s", r.open_mbps, 1);
      json.end_object();
    }
    json.end_array();
    json.field("ed25519_sign_us", sign_ns / 1e3);
    json.field("ed25519_verify_us", verify_ns / 1e3);
    json.begin_array("ed25519_batch_verify");
    for (const auto& r : batch_rows) {
      json.begin_object();
      json.field("batch", r.width);
      json.field("per_sig_us", r.per_sig_us);
      json.field("speedup_vs_scalar", r.speedup);
      json.end_object();
    }
    json.end_array();
    json.field("x25519_us", x25519_ns / 1e3);
    json.field("hmac_drbg_instantiate_ns", drbg_inst_ns, 0);
    json.field("hmac_drbg_fill32_ns", drbg_fill_ns, 0);
    json.field("chacha_rng_fill32_ns", chacha_fill_ns, 0);
    json.field("ephid_roundtrip_ns", ephid_ns, 0);
    if (json.close())
      std::printf("  (baseline written to %s)\n", o.json_path.c_str());
  }

  bench::print_footer(
      "wide tiers beat soft on bulk AES and the 16-lane CMAC driver; batch "
      "verification amortizes the shared doublings below scalar cost; all "
      "tier outputs verified bit-identical in-run");
  return 0;
}

// E2/E3 — Border-router forwarding performance (Fig 8a: Mpps, Fig 8b: Gbps)
// and E11 (baseline overhead comparison).
// Metric: per-packet pipeline cost (ns/pkt) for the exact Fig 4 egress
// checks, projected onto the paper's 120 Gbps port model; plus aggregate
// pkts/s of the concurrent data plane (ForwardingPool --threads sweep,
// scalar vs batched AES kernels), recorded to BENCH_e2.json together with
// the zero-copy accounting: heap allocations per forwarded packet
// (asserted == 0 in steady state) and copied bytes per forwarded packet
// (wire::copy_audit; the pre-PacketBuf transport copied ≥ 2× the wire
// image per hop — deep Packet copy into the event plus re-serialize).
//
// Paper setup: a commodity server (2× Xeon E5-2680, 16 cores) with 6
// dual-port 10 GbE NICs (120 Gbps aggregate), driven by a Spirent traffic
// generator, DPDK forwarding; packet sizes {128, 256, 512, 1024, 1518} B.
// Result: APNA forwarding matches the theoretical line-rate maximum at all
// sizes — the extra per-packet work (1 AES decryption, 2 lookups, 1 MAC
// verification) never becomes the bottleneck.
//
// Substitution: we measure the same per-packet pipeline (check_outgoing /
// check_incoming, the exact Fig 4 work) in-memory over bound PacketViews,
// then combine the measured CPU cost with the testbed's port model
// (12×10GbE, Ethernet 20 B/frame overhead) to produce the two Fig 8
// panels. The shape claim is "achieved == theoretical max at every size"
// whenever aggregate CPU capacity exceeds the wire's packet budget. The
// --threads sweep then measures that aggregation directly: M worker
// threads over the lock-striped AS state (the paper's 16-core aggregate,
// in software).
//
// Usage: bench_e2_forwarding [--threads=1,2,4,8] [--burst=512]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/as_state.h"
#include "core/packet_auth.h"
#include "net/sim.h"
#include "router/border_router.h"
#include "router/forwarding_pool.h"
// Heap-allocation counter: the steady-state forwarding loops below must
// not add a single allocation per packet (the zero-copy API contract —
// the SAME hook as tests/alloc_count_test, asserted here so a regression
// fails the bench run, not just the unit suite).
#include "util/alloc_count_hook.h"

using namespace apna;

namespace {

struct Setup {
  crypto::ChaChaRng rng{808};
  core::AsState as{64512, core::AsSecrets::generate(rng)};
  core::ExpTime now = net::kEpochSeconds;
  std::unique_ptr<router::BorderRouter> br;
  std::unique_ptr<router::BorderRouter> baseline;
  std::vector<core::HostAsKeys> host_keys;

  Setup() {
    router::BorderRouter::Callbacks cb;
    // Count-only egress: consumes (and pool-recycles) the handed-off
    // buffer like a real transmit queue, with no simulator behind it.
    cb.send_external = [](wire::PacketBuf) { return Result<void>::success(); };
    cb.deliver_internal = [](core::Hid, wire::PacketBuf) {
      return Result<void>::success();
    };
    cb.now = [this] { return now; };
    br = std::make_unique<router::BorderRouter>(as, cb);
    router::BorderRouter::Config base_cfg;
    base_cfg.mode = router::BorderRouter::Mode::baseline;
    baseline = std::make_unique<router::BorderRouter>(as, cb, base_cfg);

    // A population of hosts so table lookups exercise a realistic map.
    for (core::Hid hid = 1; hid <= 1024; ++hid) {
      crypto::SharedSecret seed{};
      rng.fill(MutByteSpan(seed.data(), 32));
      core::HostRecord rec;
      rec.hid = hid;
      rec.keys = core::HostAsKeys::derive(seed);
      as.host_db.upsert(rec);
      host_keys.push_back(rec.keys);
    }
  }

  /// Builds an egress packet whose wire size equals `frame_size`.
  wire::Packet make_packet(std::size_t frame_size, core::Hid hid) {
    wire::Packet pkt;
    pkt.src_aid = as.aid;
    pkt.dst_aid = 64513;
    pkt.src_ephid = as.codec.issue(hid, now + 900, rng).bytes;
    rng.fill(MutByteSpan(pkt.dst_ephid.data(), 16));
    pkt.proto = wire::NextProto::data;
    const std::size_t overhead = wire::kApnaHeaderSize + 4;  // header + ext
    pkt.payload = rng.bytes(frame_size > overhead ? frame_size - overhead : 1);
    core::stamp_packet_mac(
        crypto::AesCmac(ByteSpan(host_keys[hid - 1].mac.data(), 16)), pkt);
    return pkt;
  }
};

/// Owned buffers + the view span the zero-copy fast path consumes.
struct SealedBurst {
  std::vector<wire::PacketBuf> bufs;
  std::vector<wire::PacketView> views;

  void push(const wire::Packet& p) {
    bufs.push_back(p.seal());
    views.push_back(bufs.back().view());
  }
};

constexpr std::size_t kSizes[] = {128, 256, 512, 1024, 1518};
constexpr double kLineRateBps = 120e9;        // 6 dual-port 10GbE NICs
constexpr double kEthOverheadBytes = 20;      // preamble + IFG

double line_rate_pps(std::size_t frame) {
  return kLineRateBps / (8.0 * (frame + kEthOverheadBytes));
}

std::vector<std::size_t> parse_thread_list(int argc, char** argv,
                                           unsigned cores) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      std::vector<std::size_t> out;
      const char* p = argv[i] + 10;
      while (*p) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 10);
        if (end == p) break;  // non-numeric token: stop, don't spin
        if (v > 0) out.push_back(v);
        p = *end == ',' ? end + 1 : end;
      }
      if (!out.empty()) return out;
    }
  }
  // Default sweep: 1, 2, 4, ... up to at least 4 (so the scaling shape is
  // recorded even on small hosts, where extra threads just tie).
  std::vector<std::size_t> out;
  for (std::size_t t = 1; t <= std::max(4u, cores); t *= 2) out.push_back(t);
  return out;
}

std::size_t parse_burst(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--burst=", 8) == 0)
      return std::strtoul(argv[i] + 8, nullptr, 10);
  return 512;
}

struct PoolRun {
  double pps = 0;
  double allocs_per_pkt = 0;      // heap allocations per forwarded packet
  double copy_bytes_per_pkt = 0;  // pooled copy_of bytes per packet
};

/// Wall-clock pkts/s of a ForwardingPool over repeated bursts, with the
/// zero-copy accounting taken over the measurement window (after warm-up).
PoolRun pool_run(router::BorderRouter& br,
                 std::span<const wire::PacketView> burst, core::ExpTime now,
                 std::size_t threads, bool batched) {
  router::ForwardingPool::Config cfg;
  cfg.threads = threads;
  cfg.chunk_packets = 64;
  cfg.batched = batched;
  router::ForwardingPool pool(br, cfg);

  using Clock = std::chrono::steady_clock;
  // Warmup (populates the per-thread buffer pools and verdict buffer),
  // then measure for ~0.4 s.
  for (int i = 0; i < 4; ++i) pool.process_outgoing(burst, now);

  const std::uint64_t allocs0 = util::heap_alloc_count();
  const wire::CopyAudit audit0 = wire::copy_audit();
  std::size_t packets = 0;
  const auto t0 = Clock::now();
  double elapsed = 0;
  do {
    pool.process_outgoing(burst, now);
    packets += burst.size();
    elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  } while (elapsed < 0.4);

  PoolRun run;
  run.pps = static_cast<double>(packets) / elapsed;
  run.allocs_per_pkt =
      static_cast<double>(util::heap_alloc_count() - allocs0) / packets;
  // copy_audit is thread-local: the apply phase (where copy_of runs) is on
  // the calling thread, so this thread's audit sees every handoff copy.
  run.copy_bytes_per_pkt =
      static_cast<double>(wire::copy_audit().copy_bytes - audit0.copy_bytes) /
      packets;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "E2/E3 — border-router forwarding (Fig 8a Mpps, Fig 8b Gbps) + E11 "
      "baseline",
      "Fig 8: throughput matches the 120 Gbps testbed's theoretical max at "
      "all packet sizes");

  Setup s;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("AES backend: %s | modelling %u cores against a 120 Gbps "
              "(12x10GbE) port model\n\n",
              s.as.codec.backend(), cores);

  std::printf("%-8s %14s %14s %14s %14s %12s %12s\n", "size(B)",
              "line-rate Mpps", "APNA Mpps", "APNA Gbps", "baseline Mpps",
              "ns/pkt APNA", "ns/pkt base");

  // Machine-readable Fig 8 series for plotting.
  FILE* csv = std::fopen("fig8_data.csv", "w");
  if (csv)
    std::fprintf(csv,
                 "size_bytes,line_rate_mpps,apna_mpps,apna_gbps,"
                 "baseline_mpps,apna_ns_per_pkt,baseline_ns_per_pkt\n");

  bool all_line_rate = true;
  double apna_ns_total = 0, base_ns_total = 0;
  for (std::size_t frame : kSizes) {
    // A working set of packets from distinct hosts/EphIDs, sealed once —
    // the checks below run in place over the bound views.
    constexpr std::size_t kSet = 512;
    SealedBurst packets;
    for (std::size_t i = 0; i < kSet; ++i)
      packets.push(s.make_packet(frame, static_cast<core::Hid>(1 + (i % 1024))));

    const double apna_ns = bench::time_per_op_ns(
        20'000, [&](std::size_t i) {
          if (!s.br->check_outgoing(packets.views[i % kSet], s.now).ok())
            std::abort();
        });
    const double base_ns = bench::time_per_op_ns(
        20'000, [&](std::size_t i) {
          if (!s.baseline->check_baseline(packets.views[i % kSet]).ok())
            std::abort();
        });
    apna_ns_total += apna_ns;
    base_ns_total += base_ns;

    const double wire_pps = line_rate_pps(frame);
    const double cpu_pps = cores * 1e9 / apna_ns;
    const double achieved_pps = std::min(wire_pps, cpu_pps);
    const double base_pps = std::min(wire_pps, cores * 1e9 / base_ns);
    const double achieved_gbps = achieved_pps * frame * 8 / 1e9;
    if (achieved_pps < wire_pps * 0.999) all_line_rate = false;

    std::printf("%-8zu %14.1f %14.1f %14.1f %14.1f %12.0f %12.0f\n", frame,
                wire_pps / 1e6, achieved_pps / 1e6, achieved_gbps,
                base_pps / 1e6, apna_ns, base_ns);
    if (csv)
      std::fprintf(csv, "%zu,%.3f,%.3f,%.3f,%.3f,%.1f,%.1f\n", frame,
                   wire_pps / 1e6, achieved_pps / 1e6, achieved_gbps,
                   base_pps / 1e6, apna_ns, base_ns);
  }
  if (csv) {
    std::fclose(csv);
    std::printf("(series written to fig8_data.csv)\n");
  }

  std::printf("\nE11 — per-packet pipeline cost: APNA %.0f ns vs baseline "
              "%.0f ns (overhead factor %.1fx on pure CPU cost; invisible "
              "at line rate when CPU capacity exceeds the wire budget)\n",
              apna_ns_total / 5, base_ns_total / 5,
              apna_ns_total / std::max(1.0, base_ns_total));

  // ---- §VIII extension ablation at 512 B ------------------------------------
  {
    constexpr std::size_t kFrame = 512;
    constexpr std::size_t kSet = 512;
    SealedBurst packets;
    for (std::size_t i = 0; i < kSet; ++i) {
      auto pkt = s.make_packet(kFrame, static_cast<core::Hid>(1 + (i % 1024)));
      pkt.set_nonce(i + 1);
      core::stamp_packet_mac(
          crypto::AesCmac(ByteSpan(s.host_keys[i % 1024].mac.data(), 16)),
          pkt);
      packets.push(pkt);
    }

    const double plain_ns = bench::time_per_op_ns(20'000, [&](std::size_t i) {
      if (!s.br->check_outgoing(packets.views[i % kSet], s.now).ok())
        std::abort();
    });
    // Path stamping (§VIII-C): check + pooled splice of the AID.
    const double stamp_ns = bench::time_per_op_ns(20'000, [&](std::size_t i) {
      if (!s.br->check_outgoing(packets.views[i % kSet], s.now).ok())
        std::abort();
      wire::PacketBuf stamped =
          wire::append_path_stamp(packets.views[i % kSet], s.as.aid);
      volatile auto sink = stamped.view().path_stamp_count();
      (void)sink;
    });
    // In-network replay filter (§VIII-D): check + sharded window update.
    // Each source's nonce increments by one, like live per-host traffic.
    core::ShardedReplayFilter wins;
    std::vector<core::EphId> srcs(kSet);
    for (std::size_t i = 0; i < kSet; ++i)
      srcs[i].bytes = packets.views[i].src_ephid();
    std::vector<std::uint64_t> per_src_nonce(kSet, 0);
    const double replay_ns = bench::time_per_op_ns(20'000, [&](std::size_t i) {
      if (!s.br->check_outgoing(packets.views[i % kSet], s.now).ok())
        std::abort();
      (void)wins.accept(srcs[i % kSet], ++per_src_nonce[i % kSet]);
    });

    std::printf("\n§VIII extension ablation (512 B packets):\n");
    std::printf("  %-44s %8.0f ns/pkt\n", "Fig 4 pipeline", plain_ns);
    std::printf("  %-44s %8.0f ns/pkt (+%.0f%%)\n",
                "+ path stamping (§VIII-C)", stamp_ns,
                100.0 * (stamp_ns - plain_ns) / plain_ns);
    std::printf("  %-44s %8.0f ns/pkt (+%.0f%%)\n",
                "+ in-network replay filter (§VIII-D)", replay_ns,
                100.0 * (replay_ns - plain_ns) / plain_ns);
  }
  std::printf("Paper Fig 8 shape: Mpps decreases with packet size; Gbps "
              "saturates 120 Gbps at large sizes; measured matches "
              "theoretical max: %s\n",
              all_line_rate ? "YES (all sizes)" : "only at larger sizes on "
              "this host (fewer/slower cores than the paper's 16-core "
              "server)");

  // ---- Concurrent data plane: scalar vs batched kernels, --threads sweep ----
  {
    const std::size_t burst_size = parse_burst(argc, argv);
    const auto thread_list = parse_thread_list(argc, argv, cores);
    constexpr std::size_t kFrame = 512;
    SealedBurst burst;
    for (std::size_t i = 0; i < burst_size; ++i)
      burst.push(s.make_packet(kFrame, static_cast<core::Hid>(1 + (i % 1024))));

    // Verdict equivalence over a mixed burst: the scalar and batched MAC /
    // EphID paths MUST drop exactly the same packets.
    SealedBurst mixed;
    for (std::size_t i = 0; i < burst_size; ++i) {
      auto pkt = s.make_packet(kFrame, static_cast<core::Hid>(1 + (i % 1024)));
      if (i == 1) pkt.mac[0] ^= 1;                              // bad MAC
      if (i == 2) s.rng.fill(MutByteSpan(pkt.src_ephid.data(), 16));  // forged
      if (i == 3)
        pkt.src_ephid = s.as.codec.issue(5, s.now - 10, s.rng).bytes;  // expired
      mixed.push(pkt);
    }
    std::vector<router::BorderRouter::Verdict> vb(mixed.views.size());
    std::vector<router::BorderRouter::Verdict> vs(mixed.views.size());
    router::BorderRouter::Stats sb, ss;
    s.br->classify_outgoing_burst(mixed.views, s.now, vb, sb, /*batched=*/true);
    s.br->classify_outgoing_burst(mixed.views, s.now, vs, ss, /*batched=*/false);
    bool verdicts_equal = true;
    for (std::size_t i = 0; i < mixed.views.size(); ++i)
      if (vb[i].err != vs[i].err) verdicts_equal = false;
    std::printf("\nConcurrent data plane (burst %zu x %zu B, %u hw cores):\n",
                burst_size, kFrame, cores);
    std::printf("  scalar/batched verdicts identical: %s\n",
                verdicts_equal ? "YES" : "NO (BUG)");

    // Single-context kernel comparison, with the zero-copy accounting.
    const PoolRun scalar = pool_run(*s.br, burst.views, s.now, 1, false);
    const PoolRun batched = pool_run(*s.br, burst.views, s.now, 1, true);
    std::printf("  1-thread scalar kernels : %10.0f pkts/s (%.0f ns/pkt)\n",
                scalar.pps, 1e9 / scalar.pps);
    std::printf("  1-thread batched kernels: %10.0f pkts/s (%.0f ns/pkt, "
                "%.2fx)\n",
                batched.pps, 1e9 / batched.pps, batched.pps / scalar.pps);
    std::printf("  steady-state heap allocations per forwarded packet: "
                "%.4f (must be 0)\n",
                batched.allocs_per_pkt);
    std::printf("  copied bytes per forwarded packet: %.1f (handoff copy at "
                "the send edge; pre-PacketBuf transport copied >= %zu B/hop "
                "— full deep copy + re-serialize)\n",
                batched.copy_bytes_per_pkt, 2 * kFrame);
    // The zero-copy contract is an assertion, not a report: a regression
    // that reintroduces per-packet allocation must fail the bench.
    if (batched.allocs_per_pkt != 0.0 || scalar.allocs_per_pkt != 0.0) {
      std::fprintf(stderr,
                   "FATAL: forwarding fast path allocated on the heap "
                   "(%.4f allocs/pkt batched, %.4f scalar)\n",
                   batched.allocs_per_pkt, scalar.allocs_per_pkt);
      return 1;
    }

    // Thread sweep with the batched kernels.
    FILE* json = std::fopen("BENCH_e2.json", "w");
    if (json) {
      std::fprintf(json,
                   "{\n  \"experiment\": \"E2 concurrent forwarding\",\n"
                   "  \"frame_bytes\": %zu,\n  \"burst_packets\": %zu,\n"
                   "  \"hardware_threads\": %u,\n"
                   "  \"aes_backend\": \"%s\",\n"
                   "  \"scalar_1t_pps\": %.0f,\n"
                   "  \"batched_1t_pps\": %.0f,\n"
                   "  \"allocs_per_forwarded_packet\": %.4f,\n"
                   "  \"copy_bytes_per_packet\": %.1f,\n"
                   "  \"copy_bytes_per_packet_pre_packetbuf\": %.1f,\n"
                   "  \"sweep\": [",
                   kFrame, burst_size, cores, s.as.codec.backend(),
                   scalar.pps, batched.pps, batched.allocs_per_pkt,
                   batched.copy_bytes_per_pkt,
                   // What the old parsed-struct API copied per forwarded
                   // packet at minimum: one deep Packet copy into the
                   // scheduled event + one serialize at the next parse
                   // boundary.
                   2.0 * kFrame);
    }
    // Speedups are relative to the 1-thread batched measurement above, so
    // they stay meaningful even when the sweep list omits 1.
    const double pps_1t = batched.pps;
    for (std::size_t t = 0; t < thread_list.size(); ++t) {
      const std::size_t threads = thread_list[t];
      const PoolRun run = pool_run(*s.br, burst.views, s.now, threads, true);
      const double speedup = run.pps / pps_1t;
      std::printf("  %2zu threads             : %10.0f pkts/s (%.2fx vs 1 "
                  "thread)\n",
                  threads, run.pps, speedup);
      if (json)
        std::fprintf(json,
                     "%s\n    {\"threads\": %zu, \"pkts_per_sec\": %.0f, "
                     "\"speedup\": %.3f}",
                     t == 0 ? "" : ",", threads, run.pps, speedup);
    }
    if (json) {
      std::fprintf(json, "\n  ]\n}\n");
      std::fclose(json);
      std::printf("  (baseline written to BENCH_e2.json)\n");
    }
  }

  bench::print_footer(
      "who wins: APNA == theoretical line rate (no throughput penalty); "
      "monotone Mpps-vs-size decay and Gbps saturation reproduced; "
      "aggregate pkts/s scales with --threads on the sharded state; "
      "0 heap allocations and one bounded handoff copy per forwarded packet");
  return 0;
}

// E2/E3 — Border-router forwarding performance (Fig 8a: Mpps, Fig 8b: Gbps)
// and E11 (baseline overhead comparison).
//
// Paper setup: a commodity server (2× Xeon E5-2680, 16 cores) with 6
// dual-port 10 GbE NICs (120 Gbps aggregate), driven by a Spirent traffic
// generator, DPDK forwarding; packet sizes {128, 256, 512, 1024, 1518} B.
// Result: APNA forwarding matches the theoretical line-rate maximum at all
// sizes — the extra per-packet work (1 AES decryption, 2 lookups, 1 MAC
// verification) never becomes the bottleneck.
//
// Substitution: we measure the same per-packet pipeline (check_outgoing /
// check_incoming, the exact Fig 4 work) in-memory, then combine the
// measured CPU cost with the testbed's port model (12×10GbE, Ethernet
// 20 B/frame overhead) to produce the two Fig 8 panels. The shape claim is
// "achieved == theoretical max at every size" whenever aggregate CPU
// capacity exceeds the wire's packet budget.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/as_state.h"
#include "core/packet_auth.h"
#include "net/sim.h"
#include "router/border_router.h"

using namespace apna;

namespace {

struct Setup {
  crypto::ChaChaRng rng{808};
  core::AsState as{64512, core::AsSecrets::generate(rng)};
  core::ExpTime now = net::kEpochSeconds;
  std::unique_ptr<router::BorderRouter> br;
  std::unique_ptr<router::BorderRouter> baseline;
  std::vector<core::HostAsKeys> host_keys;

  Setup() {
    router::BorderRouter::Callbacks cb;
    cb.send_external = [](const wire::Packet&) { return Result<void>::success(); };
    cb.deliver_internal = [](core::Hid, const wire::Packet&) {
      return Result<void>::success();
    };
    cb.now = [this] { return now; };
    br = std::make_unique<router::BorderRouter>(as, cb);
    router::BorderRouter::Config base_cfg;
    base_cfg.mode = router::BorderRouter::Mode::baseline;
    baseline = std::make_unique<router::BorderRouter>(as, cb, base_cfg);

    // A population of hosts so table lookups exercise a realistic map.
    for (core::Hid hid = 1; hid <= 1024; ++hid) {
      crypto::SharedSecret seed{};
      rng.fill(MutByteSpan(seed.data(), 32));
      core::HostRecord rec;
      rec.hid = hid;
      rec.keys = core::HostAsKeys::derive(seed);
      as.host_db.upsert(rec);
      host_keys.push_back(rec.keys);
    }
  }

  /// Builds an egress packet whose wire size equals `frame_size`.
  wire::Packet make_packet(std::size_t frame_size, core::Hid hid) {
    wire::Packet pkt;
    pkt.src_aid = as.aid;
    pkt.dst_aid = 64513;
    pkt.src_ephid = as.codec.issue(hid, now + 900, rng).bytes;
    rng.fill(MutByteSpan(pkt.dst_ephid.data(), 16));
    pkt.proto = wire::NextProto::data;
    const std::size_t overhead = wire::kApnaHeaderSize + 4;  // header + ext
    pkt.payload = rng.bytes(frame_size > overhead ? frame_size - overhead : 1);
    core::stamp_packet_mac(
        crypto::AesCmac(ByteSpan(host_keys[hid - 1].mac.data(), 16)), pkt);
    return pkt;
  }
};

constexpr std::size_t kSizes[] = {128, 256, 512, 1024, 1518};
constexpr double kLineRateBps = 120e9;        // 6 dual-port 10GbE NICs
constexpr double kEthOverheadBytes = 20;      // preamble + IFG

double line_rate_pps(std::size_t frame) {
  return kLineRateBps / (8.0 * (frame + kEthOverheadBytes));
}

}  // namespace

int main() {
  bench::print_header(
      "E2/E3 — border-router forwarding (Fig 8a Mpps, Fig 8b Gbps) + E11 "
      "baseline",
      "Fig 8: throughput matches the 120 Gbps testbed's theoretical max at "
      "all packet sizes");

  Setup s;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("AES backend: %s | modelling %u cores against a 120 Gbps "
              "(12x10GbE) port model\n\n",
              s.as.codec.backend(), cores);

  std::printf("%-8s %14s %14s %14s %14s %12s %12s\n", "size(B)",
              "line-rate Mpps", "APNA Mpps", "APNA Gbps", "baseline Mpps",
              "ns/pkt APNA", "ns/pkt base");

  // Machine-readable Fig 8 series for plotting.
  FILE* csv = std::fopen("fig8_data.csv", "w");
  if (csv)
    std::fprintf(csv,
                 "size_bytes,line_rate_mpps,apna_mpps,apna_gbps,"
                 "baseline_mpps,apna_ns_per_pkt,baseline_ns_per_pkt\n");

  bool all_line_rate = true;
  double apna_ns_total = 0, base_ns_total = 0;
  for (std::size_t frame : kSizes) {
    // A working set of packets from distinct hosts/EphIDs.
    constexpr std::size_t kSet = 512;
    std::vector<wire::Packet> packets;
    packets.reserve(kSet);
    for (std::size_t i = 0; i < kSet; ++i)
      packets.push_back(
          s.make_packet(frame, static_cast<core::Hid>(1 + (i % 1024))));

    const double apna_ns = bench::time_per_op_ns(
        20'000, [&](std::size_t i) {
          if (!s.br->check_outgoing(packets[i % kSet], s.now).ok())
            std::abort();
        });
    const double base_ns = bench::time_per_op_ns(
        20'000, [&](std::size_t i) {
          if (!s.baseline->check_baseline(packets[i % kSet]).ok())
            std::abort();
        });
    apna_ns_total += apna_ns;
    base_ns_total += base_ns;

    const double wire_pps = line_rate_pps(frame);
    const double cpu_pps = cores * 1e9 / apna_ns;
    const double achieved_pps = std::min(wire_pps, cpu_pps);
    const double base_pps = std::min(wire_pps, cores * 1e9 / base_ns);
    const double achieved_gbps = achieved_pps * frame * 8 / 1e9;
    if (achieved_pps < wire_pps * 0.999) all_line_rate = false;

    std::printf("%-8zu %14.1f %14.1f %14.1f %14.1f %12.0f %12.0f\n", frame,
                wire_pps / 1e6, achieved_pps / 1e6, achieved_gbps,
                base_pps / 1e6, apna_ns, base_ns);
    if (csv)
      std::fprintf(csv, "%zu,%.3f,%.3f,%.3f,%.3f,%.1f,%.1f\n", frame,
                   wire_pps / 1e6, achieved_pps / 1e6, achieved_gbps,
                   base_pps / 1e6, apna_ns, base_ns);
  }
  if (csv) {
    std::fclose(csv);
    std::printf("(series written to fig8_data.csv)\n");
  }

  std::printf("\nE11 — per-packet pipeline cost: APNA %.0f ns vs baseline "
              "%.0f ns (overhead factor %.1fx on pure CPU cost; invisible "
              "at line rate when CPU capacity exceeds the wire budget)\n",
              apna_ns_total / 5, base_ns_total / 5,
              apna_ns_total / std::max(1.0, base_ns_total));

  // ---- §VIII extension ablation at 512 B ------------------------------------
  {
    constexpr std::size_t kFrame = 512;
    constexpr std::size_t kSet = 512;
    std::vector<wire::Packet> packets;
    for (std::size_t i = 0; i < kSet; ++i) {
      auto pkt = s.make_packet(kFrame, static_cast<core::Hid>(1 + (i % 1024)));
      pkt.set_nonce(i + 1);
      core::stamp_packet_mac(
          crypto::AesCmac(ByteSpan(s.host_keys[i % 1024].mac.data(), 16)),
          pkt);
      packets.push_back(std::move(pkt));
    }

    const double plain_ns = bench::time_per_op_ns(20'000, [&](std::size_t i) {
      if (!s.br->check_outgoing(packets[i % kSet], s.now).ok()) std::abort();
    });
    // Path stamping (§VIII-C): check + copy + append AID.
    const double stamp_ns = bench::time_per_op_ns(20'000, [&](std::size_t i) {
      if (!s.br->check_outgoing(packets[i % kSet], s.now).ok()) std::abort();
      wire::Packet stamped = packets[i % kSet];
      stamped.stamp_path(s.as.aid);
      volatile auto* sink = stamped.path_stamp.data();
      (void)sink;
    });
    // In-network replay filter (§VIII-D): check + window update. Each
    // source's nonce increments by one, like live per-host traffic.
    std::unordered_map<core::EphId, core::ReplayWindow, core::EphIdHash> wins;
    std::vector<std::uint64_t> per_src_nonce(kSet, 0);
    const double replay_ns = bench::time_per_op_ns(20'000, [&](std::size_t i) {
      const auto& pkt = packets[i % kSet];
      if (!s.br->check_outgoing(pkt, s.now).ok()) std::abort();
      core::EphId src;
      src.bytes = pkt.src_ephid;
      auto [it, ins] = wins.try_emplace(src, 1024);
      (void)it->second.accept(++per_src_nonce[i % kSet]);
    });

    std::printf("\n§VIII extension ablation (512 B packets):\n");
    std::printf("  %-44s %8.0f ns/pkt\n", "Fig 4 pipeline", plain_ns);
    std::printf("  %-44s %8.0f ns/pkt (+%.0f%%)\n",
                "+ path stamping (§VIII-C)", stamp_ns,
                100.0 * (stamp_ns - plain_ns) / plain_ns);
    std::printf("  %-44s %8.0f ns/pkt (+%.0f%%)\n",
                "+ in-network replay filter (§VIII-D)", replay_ns,
                100.0 * (replay_ns - plain_ns) / plain_ns);
  }
  std::printf("Paper Fig 8 shape: Mpps decreases with packet size; Gbps "
              "saturates 120 Gbps at large sizes; measured matches "
              "theoretical max: %s\n",
              all_line_rate ? "YES (all sizes)" : "only at larger sizes on "
              "this host (fewer/slower cores than the paper's 16-core "
              "server)");
  bench::print_footer(
      "who wins: APNA == theoretical line rate (no throughput penalty); "
      "monotone Mpps-vs-size decay and Gbps saturation reproduced");
  return 0;
}

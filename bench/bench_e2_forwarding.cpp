// E2/E3 — Border-router forwarding performance (Fig 8a: Mpps, Fig 8b: Gbps)
// and E11 (baseline overhead comparison).
// Metric: per-packet pipeline cost (ns/pkt) for the exact Fig 4 egress
// checks, projected onto the paper's 120 Gbps port model; plus aggregate
// pkts/s of the concurrent data plane — ForwardingPool over scalar /
// batched kernels AND the verified-flow cache on a flow-local (Zipf)
// workload: hit-rate, pps-vs-hit-rate and --threads axes are recorded to
// BENCH_e2.json together with the zero-copy accounting: heap allocations
// per forwarded packet (asserted == 0 in steady state) and copied bytes
// per forwarded packet (wire::copy_audit).
//
// Paper setup: a commodity server (2× Xeon E5-2680, 16 cores) with 6
// dual-port 10 GbE NICs (120 Gbps aggregate), driven by a Spirent traffic
// generator, DPDK forwarding; packet sizes {128, 256, 512, 1024, 1518} B.
// Result: APNA forwarding matches the theoretical line-rate maximum at all
// sizes — the extra per-packet work (1 AES decryption, 2 lookups, 1 MAC
// verification) never becomes the bottleneck.
//
// Substitution: we measure the same per-packet pipeline (check_outgoing /
// check_incoming, the exact Fig 4 work) in-memory over bound PacketViews,
// then combine the measured CPU cost with the testbed's port model
// (12×10GbE, Ethernet 20 B/frame overhead) to produce the two Fig 8
// panels. The --threads sweep measures aggregation directly (M workers
// over the lock-striped AS state), and the Zipf sweep measures what the
// paper's testbed never exercised: flow-dominated traffic, where the
// verified-flow cache amortizes the EphID verdict across a flow's packets
// (design choice 3 taken one step further — most packets do ONE symmetric
// MAC and zero EphID crypto).
//
// The --loopback leg (on by default; also in --smoke) moves the same
// forwarding pipeline onto a REAL wire: a TX thread blasts sealed packets
// over a loopback UDP socket pair (net/transport.h), the RX thread drains
// datagrams into pooled PacketBufs and runs ForwardingPool bursts with
// flow-hash steering — real multi-worker pps, recorded to BENCH_e2.json.
// The >1.0x-at-2+-workers assertion skips (with a printed warning) on
// single-core hosts, where the sweep measures the scheduler, not the code.
//
// Usage: bench_e2_forwarding [--threads=1,2,4,8] [--burst=512] [--smoke]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/as_state.h"
#include "core/packet_auth.h"
#include "net/sim.h"
#include "net/transport.h"
#include "router/border_router.h"
#include "router/forwarding_pool.h"
// Heap-allocation counter: the steady-state forwarding loops below must
// not add a single allocation per packet (the zero-copy API contract —
// the SAME hook as tests/alloc_count_test, asserted here so a regression
// fails the bench run, not just the unit suite).
#include "util/alloc_count_hook.h"

using namespace apna;

namespace {

struct Setup {
  crypto::ChaChaRng rng{808};
  core::AsState as{64512, core::AsSecrets::generate(rng)};
  core::ExpTime now = net::kEpochSeconds;
  std::unique_ptr<router::BorderRouter> br;
  std::unique_ptr<router::BorderRouter> baseline;
  std::vector<core::HostAsKeys> host_keys;

  Setup() {
    router::BorderRouter::Callbacks cb;
    // Count-only egress: consumes (and pool-recycles) the handed-off
    // buffer like a real transmit queue, with no simulator behind it.
    cb.send_external = [](wire::PacketBuf) { return Result<void>::success(); };
    cb.deliver_internal = [](core::Hid, wire::PacketBuf) {
      return Result<void>::success();
    };
    cb.now = [this] { return now; };
    br = std::make_unique<router::BorderRouter>(as, cb);
    router::BorderRouter::Config base_cfg;
    base_cfg.mode = router::BorderRouter::Mode::baseline;
    baseline = std::make_unique<router::BorderRouter>(as, cb, base_cfg);

    // A population of hosts so table lookups exercise a realistic map.
    for (core::Hid hid = 1; hid <= 1024; ++hid) {
      crypto::SharedSecret seed{};
      rng.fill(MutByteSpan(seed.data(), 32));
      core::HostRecord rec;
      rec.hid = hid;
      rec.keys = core::HostAsKeys::derive(seed);
      as.host_db.upsert(rec);
      host_keys.push_back(rec.keys);
    }
  }

  /// Builds an egress packet whose wire size equals `frame_size`.
  wire::Packet make_packet(std::size_t frame_size, core::Hid hid) {
    wire::Packet pkt;
    pkt.src_aid = as.aid;
    pkt.dst_aid = 64513;
    pkt.src_ephid = as.codec.issue(hid, now + 900, rng).bytes;
    rng.fill(MutByteSpan(pkt.dst_ephid.data(), 16));
    pkt.proto = wire::NextProto::data;
    const std::size_t overhead = wire::kApnaHeaderSize + 4;  // header + ext
    pkt.payload = rng.bytes(frame_size > overhead ? frame_size - overhead : 1);
    core::stamp_packet_mac(
        crypto::AesCmac(ByteSpan(host_keys[hid - 1].mac.data(), 16)), pkt);
    return pkt;
  }
};

/// Owned buffers + the view span the zero-copy fast path consumes.
struct SealedBurst {
  std::vector<wire::PacketBuf> bufs;
  std::vector<wire::PacketView> views;

  void push(const wire::Packet& p) {
    bufs.push_back(p.seal());
    views.push_back(bufs.back().view());
  }
};

constexpr std::size_t kSizes[] = {128, 256, 512, 1024, 1518};
constexpr double kLineRateBps = 120e9;        // 6 dual-port 10GbE NICs
constexpr double kEthOverheadBytes = 20;      // preamble + IFG

double line_rate_pps(std::size_t frame) {
  return kLineRateBps / (8.0 * (frame + kEthOverheadBytes));
}

std::vector<std::size_t> parse_thread_list(int argc, char** argv,
                                           unsigned cores) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      std::vector<std::size_t> out;
      const char* p = argv[i] + 10;
      while (*p) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 10);
        if (end == p) break;  // non-numeric token: stop, don't spin
        if (v > 0) out.push_back(v);
        p = *end == ',' ? end + 1 : end;
      }
      if (!out.empty()) return out;
    }
  }
  // Default sweep: 1, 2, 4, ... up to at least 4 (so the scaling shape is
  // recorded even on small hosts, where extra threads just tie).
  std::vector<std::size_t> out;
  for (std::size_t t = 1; t <= std::max(4u, cores); t *= 2) out.push_back(t);
  return out;
}

std::size_t parse_burst(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--burst=", 8) == 0)
      return std::strtoul(argv[i] + 8, nullptr, 10);
  return 512;
}

struct PoolRun {
  double pps = 0;
  double allocs_per_pkt = 0;      // heap allocations per forwarded packet
  double copy_bytes_per_pkt = 0;  // pooled copy_of bytes per packet
  double hit_rate = 0;            // verified-flow cache (0 when disabled)
};

/// Measurement window (seconds); --smoke shrinks it.
double g_measure_s = 0.4;

/// Wall-clock pkts/s of a ForwardingPool over a cycling schedule of
/// bursts, with zero-copy and flow-cache accounting taken over the
/// measurement window (after warm-up).
PoolRun pool_run(router::BorderRouter& br,
                 std::span<const std::vector<wire::PacketView>> schedule,
                 core::ExpTime now, std::size_t threads,
                 router::ForwardingPool::Kernel kernel,
                 std::size_t cache_entries) {
  router::ForwardingPool::Config cfg;
  cfg.threads = threads;
  cfg.chunk_packets = 64;
  cfg.kernel = kernel;
  cfg.flow_cache_entries = cache_entries;
  router::ForwardingPool pool(br, cfg);

  using Clock = std::chrono::steady_clock;
  // Warmup (populates the per-thread buffer pools, the verdict buffer and
  // — when enabled — the flow caches), then measure.
  for (std::size_t i = 0; i < std::max<std::size_t>(4, schedule.size()); ++i)
    pool.process_outgoing(schedule[i % schedule.size()], now);

  // Read the cache stats BEFORE the alloc snapshot: flow_cache_stats()
  // builds the cross-worker duplicate map (a stats read, not a fast path —
  // it may allocate) and must not pollute the 0-allocs/packet window.
  const core::FlowCache::Stats cache0 = pool.flow_cache_stats();
  const std::uint64_t allocs0 = util::heap_alloc_count();
  const wire::CopyAudit audit0 = wire::copy_audit();
  std::size_t packets = 0, iter = 0;
  const auto t0 = Clock::now();
  double elapsed = 0;
  do {
    const auto& burst = schedule[iter++ % schedule.size()];
    pool.process_outgoing(burst, now);
    packets += burst.size();
    elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  } while (elapsed < g_measure_s);

  PoolRun run;
  run.pps = static_cast<double>(packets) / elapsed;
  run.allocs_per_pkt =
      static_cast<double>(util::heap_alloc_count() - allocs0) / packets;
  // copy_audit is thread-local: the apply phase (where copy_of runs) is on
  // the calling thread, so this thread's audit sees every handoff copy.
  run.copy_bytes_per_pkt =
      static_cast<double>(wire::copy_audit().copy_bytes - audit0.copy_bytes) /
      packets;
  const core::FlowCache::Stats cache1 = pool.flow_cache_stats();
  const std::uint64_t lookups =
      (cache1.hits - cache0.hits) + (cache1.misses - cache0.misses);
  if (lookups > 0)
    run.hit_rate = static_cast<double>(cache1.hits - cache0.hits) / lookups;
  return run;
}

/// Single-burst convenience (the uniform-workload measurements).
PoolRun pool_run(router::BorderRouter& br,
                 std::span<const wire::PacketView> burst, core::ExpTime now,
                 std::size_t threads, router::ForwardingPool::Kernel kernel,
                 std::size_t cache_entries) {
  std::vector<std::vector<wire::PacketView>> schedule(1);
  schedule[0].assign(burst.begin(), burst.end());
  return pool_run(br, schedule, now, threads, kernel, cache_entries);
}

// ---- Loopback UDP leg: the pipeline behind a real socket ---------------------

struct LoopbackPoint {
  std::size_t workers = 0;
  double pps = 0;             // packets forwarded per second, RX side
  double allocs_per_pkt = 0;  // steady-state heap allocs per RX'd packet
};

/// One measured worker count over the live TX blast. `rx` is drained on
/// the calling thread into pooled PacketBufs; full (or socket-empty)
/// bursts run through a flow-hash-steered ForwardingPool.
LoopbackPoint loopback_point(Setup& s, net::Transport& rx,
                             const SealedBurst& flows, std::size_t burst_size,
                             std::size_t workers, double warm_s,
                             double measure_s) {
  router::ForwardingPool::Config cfg;
  cfg.threads = workers;
  cfg.kernel = router::ForwardingPool::Kernel::batched;
  cfg.flow_cache_entries = 4096;  // steering keeps each flow's entry hot
  router::ForwardingPool pool(*s.br, cfg);

  std::vector<wire::PacketBuf> owned;
  std::vector<wire::PacketView> views;
  owned.reserve(burst_size);
  views.reserve(burst_size);
  rx.set_rx([&](net::PeerId, wire::PacketBuf p) {
    views.push_back(p.view());
    owned.push_back(std::move(p));  // Bytes move: the view stays valid
  });

  // Deterministic worst-case warm-up of the pool's reusable buffers: a
  // full-size single-flow burst per flow bounds every per-slot ring /
  // gather / scratch at burst_size, so the measured window cannot grow a
  // vector no matter how the live bursts skew across workers.
  {
    std::vector<wire::PacketView> synth(burst_size);
    for (const wire::PacketView& v : flows.views) {
      synth.assign(burst_size, v);
      pool.process_outgoing(synth, s.now);
    }
  }

  using Clock = std::chrono::steady_clock;
  std::size_t packets = 0;
  const auto spin = [&](double seconds) {
    const auto t0 = Clock::now();
    double elapsed = 0;
    packets = 0;
    do {
      (void)rx.poll(1);
      while (owned.size() < burst_size && rx.poll(0) > 0) {
      }
      if (!owned.empty()) {
        pool.process_outgoing(views, s.now);
        packets += owned.size();
        views.clear();
        owned.clear();  // PacketBuf dtors recycle into this thread's pool
      }
      elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (elapsed < seconds);
    return elapsed;
  };

  spin(warm_s);  // warm pools, peer table, RX buffers
  const std::uint64_t allocs0 = util::heap_alloc_count();
  const double elapsed = spin(measure_s);

  LoopbackPoint pt;
  pt.workers = workers;
  pt.pps = static_cast<double>(packets) / elapsed;
  pt.allocs_per_pkt = packets == 0
                          ? 0.0
                          : static_cast<double>(util::heap_alloc_count() -
                                                allocs0) /
                                static_cast<double>(packets);
  rx.set_rx({});
  return pt;
}

/// Runs the loopback sweep: TX thread blasting over 127.0.0.1, RX thread
/// forwarding through the steered pool at each worker count. Empty result
/// means the environment forbids UDP sockets.
std::vector<LoopbackPoint> loopback_sweep(
    Setup& s, std::size_t burst_size, const std::vector<std::size_t>& workers,
    double warm_s, double measure_s) {
  auto rx = net::UdpTransport::open({});
  auto tx = net::UdpTransport::open({});
  if (!rx.ok() || !tx.ok()) return {};
  const auto to_rx = (*tx)->add_peer("127.0.0.1", (*rx)->local_port());
  if (!to_rx.ok()) return {};

  // The live flow set: enough flows to exercise steering across workers,
  // few enough that the verified-flow caches stay hot.
  constexpr std::size_t kLoopbackFlows = 64;
  SealedBurst flows;
  for (std::size_t i = 0; i < kLoopbackFlows; ++i)
    flows.push(s.make_packet(512, static_cast<core::Hid>(1 + (i % 1024))));

  // TX side: send_raw straight from the sealed images — no per-send
  // buffer traffic, so the blast thread is pure sendto().
  std::atomic<bool> run{true};
  net::UdpTransport& txr = **tx;
  const net::PeerId peer = *to_rx;
  std::thread blaster([&] {
    std::size_t i = 0;
    while (run.load(std::memory_order_relaxed)) {
      (void)txr.send_raw(peer, flows.views[i % kLoopbackFlows].bytes());
      ++i;
    }
  });

  std::vector<LoopbackPoint> sweep;
  for (const std::size_t w : workers)
    sweep.push_back(
        loopback_point(s, **rx, flows, burst_size, w, warm_s, measure_s));
  run.store(false);
  blaster.join();
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "E2/E3 — border-router forwarding (Fig 8a Mpps, Fig 8b Gbps) + E11 "
      "baseline",
      "Fig 8: throughput matches the 120 Gbps testbed's theoretical max at "
      "all packet sizes");

  const bool smoke = bench::smoke_mode(argc, argv);
  const std::size_t kIters = smoke ? 400 : 20'000;
  if (smoke) g_measure_s = 0.02;

  Setup s;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("AES backend: %s | modelling %u cores against a 120 Gbps "
              "(12x10GbE) port model%s\n\n",
              s.as.codec.backend(), cores, smoke ? " [SMOKE]" : "");

  std::printf("%-8s %14s %14s %14s %14s %12s %12s\n", "size(B)",
              "line-rate Mpps", "APNA Mpps", "APNA Gbps", "baseline Mpps",
              "ns/pkt APNA", "ns/pkt base");

  // Machine-readable Fig 8 series for plotting.
  FILE* csv = std::fopen("fig8_data.csv", "w");
  if (csv)
    std::fprintf(csv,
                 "size_bytes,line_rate_mpps,apna_mpps,apna_gbps,"
                 "baseline_mpps,apna_ns_per_pkt,baseline_ns_per_pkt\n");

  bool all_line_rate = true;
  double apna_ns_total = 0, base_ns_total = 0;
  for (std::size_t frame : kSizes) {
    // A working set of packets from distinct hosts/EphIDs, sealed once —
    // the checks below run in place over the bound views.
    constexpr std::size_t kSet = 512;
    SealedBurst packets;
    for (std::size_t i = 0; i < kSet; ++i)
      packets.push(s.make_packet(frame, static_cast<core::Hid>(1 + (i % 1024))));

    const double apna_ns = bench::time_per_op_ns(
        kIters, [&](std::size_t i) {
          if (!s.br->check_outgoing(packets.views[i % kSet], s.now).ok())
            std::abort();
        });
    const double base_ns = bench::time_per_op_ns(
        kIters, [&](std::size_t i) {
          if (!s.baseline->check_baseline(packets.views[i % kSet]).ok())
            std::abort();
        });
    apna_ns_total += apna_ns;
    base_ns_total += base_ns;

    const double wire_pps = line_rate_pps(frame);
    const double cpu_pps = cores * 1e9 / apna_ns;
    const double achieved_pps = std::min(wire_pps, cpu_pps);
    const double base_pps = std::min(wire_pps, cores * 1e9 / base_ns);
    const double achieved_gbps = achieved_pps * frame * 8 / 1e9;
    if (achieved_pps < wire_pps * 0.999) all_line_rate = false;

    std::printf("%-8zu %14.1f %14.1f %14.1f %14.1f %12.0f %12.0f\n", frame,
                wire_pps / 1e6, achieved_pps / 1e6, achieved_gbps,
                base_pps / 1e6, apna_ns, base_ns);
    if (csv)
      std::fprintf(csv, "%zu,%.3f,%.3f,%.3f,%.3f,%.1f,%.1f\n", frame,
                   wire_pps / 1e6, achieved_pps / 1e6, achieved_gbps,
                   base_pps / 1e6, apna_ns, base_ns);
  }
  if (csv) {
    std::fclose(csv);
    std::printf("(series written to fig8_data.csv)\n");
  }

  std::printf("\nE11 — per-packet pipeline cost: APNA %.0f ns vs baseline "
              "%.0f ns (overhead factor %.1fx on pure CPU cost; invisible "
              "at line rate when CPU capacity exceeds the wire budget)\n",
              apna_ns_total / 5, base_ns_total / 5,
              apna_ns_total / std::max(1.0, base_ns_total));

  // ---- §VIII extension ablation at 512 B ------------------------------------
  {
    constexpr std::size_t kFrame = 512;
    constexpr std::size_t kSet = 512;
    SealedBurst packets;
    for (std::size_t i = 0; i < kSet; ++i) {
      auto pkt = s.make_packet(kFrame, static_cast<core::Hid>(1 + (i % 1024)));
      pkt.set_nonce(i + 1);
      core::stamp_packet_mac(
          crypto::AesCmac(ByteSpan(s.host_keys[i % 1024].mac.data(), 16)),
          pkt);
      packets.push(pkt);
    }

    const double plain_ns = bench::time_per_op_ns(kIters, [&](std::size_t i) {
      if (!s.br->check_outgoing(packets.views[i % kSet], s.now).ok())
        std::abort();
    });
    // Path stamping (§VIII-C): check + pooled splice of the AID.
    const double stamp_ns = bench::time_per_op_ns(kIters, [&](std::size_t i) {
      if (!s.br->check_outgoing(packets.views[i % kSet], s.now).ok())
        std::abort();
      wire::PacketBuf stamped =
          wire::append_path_stamp(packets.views[i % kSet], s.as.aid);
      volatile auto sink = stamped.view().path_stamp_count();
      (void)sink;
    });
    // In-network replay filter (§VIII-D): check + sharded window update.
    // Each source's nonce increments by one, like live per-host traffic.
    core::ShardedReplayFilter wins;
    std::vector<core::EphId> srcs(kSet);
    for (std::size_t i = 0; i < kSet; ++i)
      srcs[i].bytes = packets.views[i].src_ephid();
    std::vector<std::uint64_t> per_src_nonce(kSet, 0);
    const double replay_ns = bench::time_per_op_ns(kIters, [&](std::size_t i) {
      if (!s.br->check_outgoing(packets.views[i % kSet], s.now).ok())
        std::abort();
      (void)wins.accept(srcs[i % kSet], ++per_src_nonce[i % kSet]);
    });

    std::printf("\n§VIII extension ablation (512 B packets):\n");
    std::printf("  %-44s %8.0f ns/pkt\n", "Fig 4 pipeline", plain_ns);
    std::printf("  %-44s %8.0f ns/pkt (+%.0f%%)\n",
                "+ path stamping (§VIII-C)", stamp_ns,
                100.0 * (stamp_ns - plain_ns) / plain_ns);
    std::printf("  %-44s %8.0f ns/pkt (+%.0f%%)\n",
                "+ in-network replay filter (§VIII-D)", replay_ns,
                100.0 * (replay_ns - plain_ns) / plain_ns);
  }
  std::printf("Paper Fig 8 shape: Mpps decreases with packet size; Gbps "
              "saturates 120 Gbps at large sizes; measured matches "
              "theoretical max: %s\n",
              all_line_rate ? "YES (all sizes)" : "only at larger sizes on "
              "this host (fewer/slower cores than the paper's 16-core "
              "server)");

  // ---- Concurrent data plane: kernels, flow cache, Zipf + threads sweeps ----
  {
    using Kernel = router::ForwardingPool::Kernel;
    const std::size_t burst_size = parse_burst(argc, argv);
    const auto thread_list = smoke ? std::vector<std::size_t>{1, 2}
                                   : parse_thread_list(argc, argv, cores);
    constexpr std::size_t kFrame = 512;
    SealedBurst burst;
    for (std::size_t i = 0; i < burst_size; ++i)
      burst.push(s.make_packet(kFrame, static_cast<core::Hid>(1 + (i % 1024))));

    // Verdict equivalence over a mixed burst: the scalar, batched and
    // CACHED pipelines must drop exactly the same packets (cold and warm).
    SealedBurst mixed;
    for (std::size_t i = 0; i < burst_size; ++i) {
      auto pkt = s.make_packet(kFrame, static_cast<core::Hid>(1 + (i % 1024)));
      if (i == 1) pkt.mac[0] ^= 1;                              // bad MAC
      if (i == 2) s.rng.fill(MutByteSpan(pkt.src_ephid.data(), 16));  // forged
      if (i == 3)
        pkt.src_ephid = s.as.codec.issue(5, s.now - 10, s.rng).bytes;  // expired
      mixed.push(pkt);
    }
    std::vector<router::BorderRouter::Verdict> vb(mixed.views.size());
    std::vector<router::BorderRouter::Verdict> vs(mixed.views.size());
    std::vector<router::BorderRouter::Verdict> vc(mixed.views.size());
    router::BorderRouter::Stats sb, ss, sc;
    core::FlowCache cache(4096);
    s.br->classify_outgoing_burst(mixed.views, s.now, vb, sb, /*batched=*/true);
    s.br->classify_outgoing_burst(mixed.views, s.now, vs, ss, /*batched=*/false);
    bool verdicts_equal = true;
    for (int pass = 0; pass < 2; ++pass) {  // cold then warm cache
      s.br->classify_outgoing_burst(mixed.views, s.now, vc, sc, true, &cache);
      for (std::size_t i = 0; i < mixed.views.size(); ++i)
        if (vc[i].err != vb[i].err) verdicts_equal = false;
    }
    for (std::size_t i = 0; i < mixed.views.size(); ++i)
      if (vb[i].err != vs[i].err) verdicts_equal = false;
    std::printf("\nConcurrent data plane (burst %zu x %zu B, %u hw cores):\n",
                burst_size, kFrame, cores);
    std::printf("  scalar/batched/cached verdicts identical: %s\n",
                verdicts_equal ? "YES" : "NO (BUG)");
    if (!verdicts_equal) return 1;

    // Single-context kernel comparison on the uniform (cache-hostile up to
    // 1024 flows) burst, with the zero-copy accounting.
    const PoolRun scalar =
        pool_run(*s.br, burst.views, s.now, 1, Kernel::scalar, 0);
    const PoolRun batched =
        pool_run(*s.br, burst.views, s.now, 1, Kernel::batched, 0);
    std::printf("  1-thread scalar kernels : %10.0f pkts/s (%.0f ns/pkt)\n",
                scalar.pps, 1e9 / scalar.pps);
    std::printf("  1-thread batched kernels: %10.0f pkts/s (%.0f ns/pkt, "
                "%.2fx)\n",
                batched.pps, 1e9 / batched.pps, batched.pps / scalar.pps);
    std::printf("  steady-state heap allocations per forwarded packet: "
                "%.4f (must be 0)\n",
                batched.allocs_per_pkt);
    std::printf("  copied bytes per forwarded packet: %.1f (handoff copy at "
                "the send edge; pre-PacketBuf transport copied >= %zu B/hop "
                "— full deep copy + re-serialize)\n",
                batched.copy_bytes_per_pkt, 2 * kFrame);
    // The zero-copy contract is an assertion, not a report: a regression
    // that reintroduces per-packet allocation must fail the bench.
    if (batched.allocs_per_pkt != 0.0 || scalar.allocs_per_pkt != 0.0) {
      std::fprintf(stderr,
                   "FATAL: forwarding fast path allocated on the heap "
                   "(%.4f allocs/pkt batched, %.4f scalar)\n",
                   batched.allocs_per_pkt, scalar.allocs_per_pkt);
      return 1;
    }

    // ---- Flow-locality (Zipf) workload: the verified-flow cache ------------
    // kFlows live EphIDs across the 1024 hosts; bursts sample flows from a
    // Zipf(s) popularity law. The sampled schedule is IDENTICAL for every
    // configuration (same seed), so pps differences are pipeline, not
    // workload.
    const std::size_t kFlows = smoke ? 512 : 4096;
    const std::size_t kScheduleBursts = smoke ? 4 : 16;
    SealedBurst flow_pkts;
    for (std::size_t fidx = 0; fidx < kFlows; ++fidx)
      flow_pkts.push(
          s.make_packet(kFrame, static_cast<core::Hid>(1 + (fidx % 1024))));

    struct ZipfPoint {
      double s = 0;
      PoolRun cached;
      PoolRun uncached;
    };
    const double zipf_list[] = {0.0, 0.8, 1.1, 1.4};
    std::vector<ZipfPoint> zipf_sweep;
    std::vector<std::vector<wire::PacketView>> schedule_s11;
    for (const double zs : zipf_list) {
      bench::ZipfSampler zipf(kFlows, zs, 0xe2f705eedULL);
      std::vector<std::vector<wire::PacketView>> schedule(kScheduleBursts);
      for (auto& b : schedule) {
        b.reserve(burst_size);
        for (std::size_t i = 0; i < burst_size; ++i)
          b.push_back(flow_pkts.views[zipf.next()]);
      }
      ZipfPoint pt;
      pt.s = zs;
      pt.cached = pool_run(*s.br, schedule, s.now, 1, Kernel::batched, 4096);
      pt.uncached = pool_run(*s.br, schedule, s.now, 1, Kernel::batched, 0);
      zipf_sweep.push_back(pt);
      if (zs == 1.1) schedule_s11 = std::move(schedule);
    }

    // The scalar single-core reference on the SAME flow-local workload —
    // the acceptance baseline for the cached fused pipeline.
    const PoolRun scalar_s11 =
        pool_run(*s.br, schedule_s11, s.now, 1, Kernel::scalar, 0);
    const ZipfPoint* s11 = nullptr;
    for (const auto& pt : zipf_sweep)
      if (pt.s == 1.1) s11 = &pt;
    const double cached_speedup =
        s11 ? s11->cached.pps / scalar_s11.pps : 0.0;

    std::printf("\nVerified-flow cache, Zipf flow-locality sweep "
                "(%zu flows, 1 thread, burst %zu):\n",
                kFlows, burst_size);
    std::printf("  %6s %10s %14s %14s %10s\n", "zipf s", "hit rate",
                "cached pkts/s", "uncached", "gain");
    for (const auto& pt : zipf_sweep)
      std::printf("  %6.1f %9.1f%% %14.0f %14.0f %9.2fx\n", pt.s,
                  100 * pt.cached.hit_rate, pt.cached.pps, pt.uncached.pps,
                  pt.cached.pps / pt.uncached.pps);
    std::printf("  cached fused vs scalar single-core at s=1.1: %.0f vs %.0f "
                "pkts/s = %.2fx (target >= 1.5x)\n",
                s11 ? s11->cached.pps : 0.0, scalar_s11.pps, cached_speedup);
    if (s11 && s11->cached.allocs_per_pkt != 0.0) {
      std::fprintf(stderr, "FATAL: cached pipeline allocated on the heap "
                           "(%.4f allocs/pkt)\n",
                   s11->cached.allocs_per_pkt);
      return 1;
    }
    // The 1.5x floor is ENFORCED, not just printed — on AES-NI hardware in
    // full runs. The soft backend is exempt (its MAC dominates both paths,
    // so the ratio sits near 1x by construction), as are --smoke windows
    // (too short to be stable).
    if (!smoke && std::strcmp(s.as.codec.backend(), "aesni") == 0 &&
        cached_speedup < 1.5) {
      std::fprintf(stderr,
                   "FATAL: cached fused pipeline is only %.2fx the scalar "
                   "single-core pps at Zipf s=1.1 (floor 1.5x)\n",
                   cached_speedup);
      return 1;
    }

    // ---- Thread sweeps: uncached batched + cached (s=1.1) ------------------
    struct ThreadPoint {
      std::size_t threads = 0;
      PoolRun uncached;
      PoolRun cached;
    };
    std::vector<ThreadPoint> sweep;
    std::printf("\nThreads sweep (batched kernels; cached column runs the "
                "Zipf s=1.1 schedule):\n");
    std::printf("  %7s %14s %9s %14s %9s %9s\n", "threads", "uncached pps",
                "speedup", "cached pps", "speedup", "hit rate");
    for (const std::size_t t : thread_list) {
      ThreadPoint pt;
      pt.threads = t;
      pt.uncached = pool_run(*s.br, burst.views, s.now, t, Kernel::batched, 0);
      pt.cached =
          pool_run(*s.br, schedule_s11, s.now, t, Kernel::batched, 4096);
      sweep.push_back(pt);
      std::printf("  %7zu %14.0f %8.2fx %14.0f %8.2fx %8.1f%%\n", t,
                  pt.uncached.pps, pt.uncached.pps / batched.pps,
                  pt.cached.pps, s11 ? pt.cached.pps / s11->cached.pps : 0.0,
                  100 * pt.cached.hit_rate);
    }

    // ---- Loopback UDP leg: real sockets, real threads ----------------------
    // Worker counts: 1 (the speedup denominator), 2, and 4 when the host
    // has the cores for it. Kept separate from --threads: the loopback RX
    // thread itself burns a core, so the in-memory sweep's counts don't
    // transfer.
    std::vector<std::size_t> loopback_workers{1, 2};
    if (cores >= 4) loopback_workers.push_back(4);
    const std::vector<LoopbackPoint> loopback = loopback_sweep(
        s, burst_size, loopback_workers, smoke ? 0.05 : 0.3,
        smoke ? 0.05 : g_measure_s);
    double loopback_speedup = 0;  // best multi-worker pps / 1-worker pps
    if (loopback.empty()) {
      std::printf("\nLoopback UDP leg: SKIPPED (sockets unavailable in this "
                  "environment)\n");
    } else {
      std::printf("\nLoopback UDP leg (TX blast thread -> steered "
                  "ForwardingPool, flow_hash, burst %zu):\n",
                  burst_size);
      std::printf("  %7s %14s %9s %12s\n", "workers", "forwarded pps",
                  "speedup", "allocs/pkt");
      for (const auto& pt : loopback) {
        const double speedup = pt.pps / loopback[0].pps;
        if (pt.workers > 1) loopback_speedup = std::max(loopback_speedup, speedup);
        std::printf("  %7zu %14.0f %8.2fx %12.4f\n", pt.workers, pt.pps,
                    speedup, pt.allocs_per_pkt);
        // The zero-alloc contract crosses the syscall boundary: recvfrom
        // lands in recycled pool storage, so the steady-state UDP
        // forwarding path must not allocate either.
        if (pt.allocs_per_pkt != 0.0) {
          std::fprintf(stderr,
                       "FATAL: loopback UDP forwarding path allocated on the "
                       "heap (%.4f allocs/pkt at %zu workers)\n",
                       pt.allocs_per_pkt, pt.workers);
          return 1;
        }
      }
      if (bench::single_core()) {
        std::printf("  WARNING: single hardware thread — the multi-worker "
                    "speedup assertion is SKIPPED (this sweep measures the "
                    "scheduler, not the data plane, on 1 core)\n");
      } else if (!smoke && loopback_speedup <= 1.0) {
        std::fprintf(stderr,
                     "FATAL: loopback pps never exceeded the 1-worker rate "
                     "on a %u-core host (best %.2fx at 2+ workers)\n",
                     cores, loopback_speedup);
        return 1;
      }
    }

    // ---- BENCH_e2.json ------------------------------------------------------
    bench::JsonFile json("BENCH_e2.json");
    if (json.ok()) {
      json.field("experiment", "E2 concurrent forwarding");
      json.field("frame_bytes", kFrame);
      json.field("burst_packets", burst_size);
      json.machine_shape();
      json.provenance(808);  // Setup's ChaChaRng seed
      json.field("aes_backend", s.as.codec.backend());
      json.field("scalar_1t_pps", scalar.pps, 0);
      json.field("batched_1t_pps", batched.pps, 0);
      json.field("allocs_per_forwarded_packet", batched.allocs_per_pkt, 4);
      json.field("copy_bytes_per_packet", batched.copy_bytes_per_pkt, 1);
      // What the old parsed-struct API copied per forwarded packet at
      // minimum: one deep Packet copy into the scheduled event + one
      // serialize at the next parse boundary.
      json.field("copy_bytes_per_packet_pre_packetbuf", 2.0 * kFrame, 1);
      json.field("zipf_flows", kFlows);
      json.field("flow_cache_entries", std::size_t{4096});
      json.field("scalar_1t_zipf11_pps", scalar_s11.pps, 0);
      json.field("cached_1t_zipf11_speedup_vs_scalar", cached_speedup, 3);
      json.begin_array("zipf_sweep");  // pps-vs-hit-rate axis
      for (const auto& pt : zipf_sweep) {
        json.begin_object();
        json.field("zipf_s", pt.s, 1);
        json.field("hit_rate", pt.cached.hit_rate, 4);
        json.field("cached_pps", pt.cached.pps, 0);
        json.field("uncached_pps", pt.uncached.pps, 0);
        json.end_object();
      }
      json.end_array();
      json.begin_array("sweep");  // threads axis
      for (const auto& pt : sweep) {
        json.begin_object();
        json.field("threads", pt.threads);
        json.field("pkts_per_sec", pt.uncached.pps, 0);
        json.field("speedup", pt.uncached.pps / batched.pps, 3);
        json.field("cached_zipf11_pps", pt.cached.pps, 0);
        json.field("cached_hit_rate", pt.cached.hit_rate, 4);
        json.end_object();
      }
      json.end_array();
      json.field("loopback_udp_available", !loopback.empty());
      if (!loopback.empty()) {
        // The speedup column is real only when single_core is false —
        // that is exactly what the machine-shape fields above record.
        json.begin_array("loopback_sweep");
        for (const auto& pt : loopback) {
          json.begin_object();
          json.field("workers", pt.workers);
          json.field("pkts_per_sec", pt.pps, 0);
          json.field("speedup", pt.pps / loopback[0].pps, 3);
          json.field("allocs_per_pkt", pt.allocs_per_pkt, 4);
          json.end_object();
        }
        json.end_array();
      }
      if (json.close())
        std::printf("  (baseline written to BENCH_e2.json)\n");
    }
  }

  bench::print_footer(
      "who wins: APNA == theoretical line rate (no throughput penalty); "
      "monotone Mpps-vs-size decay and Gbps saturation reproduced; "
      "aggregate pkts/s scales with --threads on the sharded state; the "
      "verified-flow cache turns flow locality into >= 1.5x single-core "
      "pps at Zipf s=1.1 with verdicts bit-identical to the uncached path; "
      "0 heap allocations and one bounded handoff copy per forwarded packet");
  return 0;
}

// E10 — incremental-deployment overhead (§VII-B, §VII-D, Fig 9).
// Metric: encapsulation bytes on the wire (Fig 9) and ns per translated /
// relayed packet for each deployment vehicle.
//
// Measures what the deployment vehicles cost relative to a native APNA
// host: (a) GRE/IPv4 encapsulation bytes on the wire (Fig 9), (b) the
// IPv4-gateway translation work per packet, and (c) the NAT-mode AP relay
// (inner MAC verify + re-MAC) per packet.
#include <cstdio>

#include "apna/internet.h"
#include "bench_util.h"
#include "gateway/ipv4_gateway.h"
#include "gateway/nat_ap.h"
#include "wire/ipv4.h"

using namespace apna;

int main() {
  bench::print_header("E10 — gateway / access-point deployment overheads",
                      "§VII-B NAT-mode AP, §VII-D gateway + GRE (Fig 9)");

  // --- (a) Encapsulation overhead (pure wire accounting) ---------------------
  {
    crypto::ChaChaRng rng(1);
    wire::Packet apna_pkt;
    apna_pkt.src_aid = 1;
    apna_pkt.dst_aid = 2;
    rng.fill(MutByteSpan(apna_pkt.src_ephid.data(), 16));
    rng.fill(MutByteSpan(apna_pkt.dst_ephid.data(), 16));
    apna_pkt.payload = rng.bytes(1400);

    wire::GreApnaPacket gre;
    gre.outer.src = 0x0A000001;
    gre.outer.dst = 0x0A000002;
    gre.apna = apna_pkt;

    const std::size_t native = apna_pkt.wire_size();
    const std::size_t tunneled = gre.serialize().size();
    std::printf("GRE/IPv4 encapsulation (1400 B payload): native APNA %zu B, "
                "tunneled %zu B -> +%zu B (%.1f%%) per packet\n",
                native, tunneled, tunneled - native,
                100.0 * (tunneled - native) / native);

    volatile std::size_t sink = 0;
    const double enc_ns = bench::time_per_op_ns(20'000, [&](std::size_t) {
      sink = sink + gre.serialize().size();
    });
    (void)sink;
    const Bytes wire_bytes = gre.serialize();
    const double dec_ns = bench::time_per_op_ns(20'000, [&](std::size_t) {
      auto p = wire::GreApnaPacket::parse(wire_bytes);
      if (!p.ok()) std::abort();
    });
    std::printf("GRE encap %.0f ns/pkt, decap+parse %.0f ns/pkt\n\n", enc_ns,
                dec_ns);
  }

  // --- (b)+(c) End-to-end per-packet cost: native vs NAT-AP vs gateway --------
  auto run_world = [&](int mode) -> double {
    Internet net{static_cast<std::uint64_t>(100 + mode)};
    auto& as_a = net.add_as(100, "A");
    auto& as_b = net.add_as(300, "B");
    net.link(100, 300, 1000);

    host::Host& server = as_b.add_host("server");
    (void)provision_ephids(server, net.loop(), 2);
    std::uint64_t received = 0;
    server.set_data_handler([&](std::uint64_t, ByteSpan) { ++received; });

    constexpr int kPackets = 2'000;
    const Bytes payload(1000, 0x55);

    if (mode == 0) {  // native host
      host::Host& h = as_a.add_host("native");
      (void)provision_ephids(h, net.loop(), 1);
      auto sid = h.connect(server.pool().entries().front()->cert, {},
                           [](Result<std::uint64_t>) {});
      net.run();
      const auto t0 = bench::Clock::now();
      for (int i = 0; i < kPackets; ++i) (void)h.send_data(*sid, payload);
      net.run();
      const double ns = std::chrono::duration<double, std::nano>(
                            bench::Clock::now() - t0)
                            .count() /
                        kPackets;
      if (received < kPackets) std::abort();
      return ns;
    }
    if (mode == 1) {  // behind NAT-mode AP
      gw::NatAccessPoint ap({.name = "ap"}, as_a, net.directory());
      host::Host& h = ap.add_inner_host("inner");
      (void)provision_ephids(h, net.loop(), 1);
      auto sid = h.connect(server.pool().entries().front()->cert, {},
                           [](Result<std::uint64_t>) {});
      net.run();
      const auto t0 = bench::Clock::now();
      for (int i = 0; i < kPackets; ++i) (void)h.send_data(*sid, payload);
      net.run();
      const double ns = std::chrono::duration<double, std::nano>(
                            bench::Clock::now() - t0)
                            .count() /
                        kPackets;
      if (received < kPackets) std::abort();
      return ns;
    }
    // mode 2: legacy IPv4 host through the gateway
    bool pub = false;
    server.publish_name("srv.example", server.pool().entries().front()->cert,
                        0, [&](Result<void> r) { pub = r.ok(); });
    net.run();
    if (!pub) std::abort();
    gw::Ipv4Gateway gateway({}, as_a);
    (void)provision_ephids(gateway.gw_host(), net.loop(), 2);
    gateway.attach_legacy_host(0xC0A80102, [](const wire::Ipv4Packet&) {});
    std::uint32_t ip = 0;
    gateway.legacy_resolve("srv.example", [&](Result<std::uint32_t> r) {
      ip = r.ok() ? *r : 0;
    });
    net.run();
    if (ip == 0) std::abort();
    wire::Ipv4Packet pkt;
    pkt.hdr.src = 0xC0A80102;
    pkt.hdr.dst = ip;
    pkt.hdr.proto = wire::IpProto::udp;
    pkt.src_port = 4000;
    pkt.dst_port = 80;
    pkt.payload = payload;
    // Warm the flow (handshake).
    gateway.on_legacy_packet(pkt);
    net.run();
    const auto t0 = bench::Clock::now();
    for (int i = 0; i < kPackets; ++i) gateway.on_legacy_packet(pkt);
    net.run();
    const double ns = std::chrono::duration<double, std::nano>(
                          bench::Clock::now() - t0)
                          .count() /
                      kPackets;
    if (received < kPackets) std::abort();
    return ns;
  };

  // Three repetitions per mode, taking the minimum — this VM is a shared
  // 2-vCPU box and single-shot wall-clock timings swing by 2x.
  auto best_of = [&](int mode) {
    double best = 1e18;
    for (int rep = 0; rep < 3; ++rep) best = std::min(best, run_world(mode));
    return best;
  };
  const double native = best_of(0);
  const double nat = best_of(1);
  const double gateway = best_of(2);

  std::printf("%-38s %14s %10s\n", "path (send+network+deliver, 1000 B)",
              "us/packet", "vs native");
  std::printf("%-38s %14.2f %10s\n", "native APNA host", native / 1e3,
              "1.00x");
  std::printf("%-38s %14.2f %9.2fx\n", "behind NAT-mode AP (§VII-B)",
              nat / 1e3, nat / native);
  std::printf("%-38s %14.2f %9.2fx\n", "legacy IPv4 via gateway (§VII-D)",
              gateway / 1e3, gateway / native);

  bench::print_footer(
      "the NAT-mode AP pays one extra MAC verify + re-MAC per packet "
      "(~1.2x end-to-end cost); IPv4-gateway translation is within noise "
      "of a native host; GRE tunneling costs 24 B (~2%) per 1400 B packet");
  return 0;
}

// Shared helpers for the experiment benchmarks (E1..E11).
//
// System-level experiments print paper-style tables via these helpers;
// micro benchmarks additionally register google-benchmark timers.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace apna::bench {

using Clock = std::chrono::steady_clock;

/// Times `fn(i)` over `iters` calls; returns nanoseconds per call.
inline double time_per_op_ns(std::size_t iters,
                             const std::function<void(std::size_t)>& fn) {
  // Warmup.
  const std::size_t warm = iters / 10 + 1;
  for (std::size_t i = 0; i < warm; ++i) fn(i);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn(i);
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void print_footer(const std::string& takeaway) {
  std::printf("----------------------------------------------------------------\n");
  std::printf("Shape check: %s\n\n", takeaway.c_str());
}

}  // namespace apna::bench

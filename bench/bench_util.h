// Shared helpers for the experiment benchmarks (E1..E11).
//
// System-level experiments print paper-style tables via these helpers;
// micro benchmarks additionally register google-benchmark timers. The
// Zipf sampler (flow-locality workloads) and the BENCH_*.json emitter
// live here so every bench shares one implementation.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "crypto/aes.h"
#include "crypto/rng.h"

namespace apna::bench {

using Clock = std::chrono::steady_clock;

/// Hardware threads the host actually exposes (1 when unknown). The
/// checked-in BENCH_*.json baselines record this next to every thread /
/// worker sweep: a flat "speedup" column measured on a 1-core container is
/// a fact about the machine, not the code, and must be readable as such.
inline unsigned hardware_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// True when thread sweeps cannot show real parallelism. Benches must
/// SKIP their speedup assertions (with a printed warning) instead of
/// failing — or, worse, silently passing a meaningless >= 1.0x check.
inline bool single_core() { return hardware_concurrency() <= 1; }

/// Git commit the binary was built from. Stamped at configure time
/// (bench/CMakeLists.txt); "unknown" outside a git checkout. Baselines
/// carry it so a checked-in JSON can always be traced to the code that
/// produced it.
inline const char* git_sha() {
#ifdef APNA_GIT_SHA
  return APNA_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Times `fn(i)` over `iters` calls; returns nanoseconds per call.
inline double time_per_op_ns(std::size_t iters,
                             const std::function<void(std::size_t)>& fn) {
  // Warmup.
  const std::size_t warm = iters / 10 + 1;
  for (std::size_t i = 0; i < warm; ++i) fn(i);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn(i);
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void print_footer(const std::string& takeaway) {
  std::printf("----------------------------------------------------------------\n");
  std::printf("Shape check: %s\n\n", takeaway.c_str());
}

/// True when `--smoke` appears in argv: benches shrink every iteration
/// count / measurement window to "compiles-and-runs" size so the ctest
/// `bench_smoke` entries keep them from compile- and bit-rotting without
/// burning CI time. Smoke runs still exercise every code path.
inline bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") return true;
  return false;
}

/// Zipf(s) sampler over ranks [0, n): P(rank k) ∝ 1/(k+1)^s. Real traffic
/// is flow-dominated — a small set of elephant flows carries most packets —
/// and Zipf with s ≈ 1.1 is the standard stand-in (flow-locality workloads
/// for the E2 verified-flow cache). s == 0 degenerates to uniform.
/// Deterministic for a given (n, s, seed); inverse-CDF table + binary
/// search, fine at bench scale.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s, std::uint64_t seed)
      : cdf_(n), rng_(seed) {
    double total = 0;
    for (std::size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t next() {
    const double u = rng_.uniform_double();
    return static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  crypto::ChaChaRng rng_;
};

/// Minimal streaming emitter for the checked-in BENCH_*.json baselines:
/// one top-level object, scalar fields, arrays of flat objects. Handles
/// comma placement so the benches stop hand-assembling JSON with fprintf.
///
/// Writes stream to `<path>.tmp`; close() flushes and renames over the
/// final path, so a bench killed mid-emit never leaves a torn baseline
/// where the checked-in JSON used to be (same atomicity contract as the
/// persist layer's snapshots).
class JsonFile {
 public:
  explicit JsonFile(const std::string& path)
      : path_(path),
        tmp_(path + ".tmp"),
        f_(std::fopen(tmp_.c_str(), "w")) {
    if (f_) std::fputs("{", f_);
  }
  ~JsonFile() { close(); }
  JsonFile(const JsonFile&) = delete;
  JsonFile& operator=(const JsonFile&) = delete;

  bool ok() const { return f_ != nullptr; }

  void field(const char* key, const char* v) {
    pre(key);
    std::fprintf(f_, "\"%s\"", v);
  }
  void field(const char* key, const std::string& v) { field(key, v.c_str()); }
  void field(const char* key, double v, int precision = 2) {
    pre(key);
    std::fprintf(f_, "%.*f", precision, v);
  }
  void field(const char* key, std::uint64_t v) {
    pre(key);
    std::fprintf(f_, "%llu", static_cast<unsigned long long>(v));
  }
  void field(const char* key, unsigned v) {
    field(key, static_cast<std::uint64_t>(v));
  }
  void field(const char* key, bool v) {
    pre(key);
    std::fputs(v ? "true" : "false", f_);
  }

  /// The machine-shape block every BENCH_*.json carries: readers of a
  /// checked-in baseline need to know whether its sweeps had real cores
  /// behind them (see single_core()), and which crypto tier (soft / aesni /
  /// avx2 / vaes_avx512, after the APNA_CRYPTO_BACKEND cap) produced the
  /// numbers — crypto-bound baselines from different tiers are not
  /// comparable.
  void machine_shape() {
    field("hardware_concurrency", bench::hardware_concurrency());
    field("single_core", bench::single_core());
    field("crypto_backend",
          crypto::Aes128::backend_name(crypto::Aes128::best_backend()));
  }

  /// The provenance block every baseline carries: the commit the binary
  /// was built from plus the RNG seed that drove the workload. Together
  /// with the determinism contract (same seed ⇒ same workload) this makes
  /// each emitted JSON a reproducible artifact, not a one-off.
  void provenance(std::uint64_t rng_seed) {
    field("git_sha", bench::git_sha());
    field("rng_seed", rng_seed);
  }

  void begin_array(const char* key) {
    pre(key);
    if (f_) std::fputs("[", f_);
    ++depth_;
    first_ = true;
  }
  void end_array() {
    --depth_;
    newline_indent();
    if (f_) std::fputs("]", f_);
    first_ = false;
  }
  void begin_object() {
    if (!f_) return;
    if (!first_) std::fputs(",", f_);
    newline_indent();
    std::fputs("{", f_);
    ++depth_;
    first_ = true;
  }
  void end_object() {
    --depth_;
    newline_indent();
    if (f_) std::fputs("}", f_);
    first_ = false;
  }

  /// Closes the file (also run by the destructor): flushes the temp file
  /// and renames it over the final path. Returns true only when the
  /// baseline landed completely — on any failure the temp file is removed
  /// and whatever was at the final path before is left untouched.
  bool close() {
    if (!f_) return false;
    std::fputs("\n}\n", f_);
    bool ok = std::fflush(f_) == 0;
    ok = (std::fclose(f_) == 0) && ok;
    f_ = nullptr;
    if (ok) ok = std::rename(tmp_.c_str(), path_.c_str()) == 0;
    if (!ok) std::remove(tmp_.c_str());
    return ok;
  }

 private:
  void newline_indent() {
    if (!f_) return;
    std::fputc('\n', f_);
    for (int i = 0; i < 2 * depth_; ++i) std::fputc(' ', f_);
  }
  void pre(const char* key) {
    if (!f_) return;
    if (!first_) std::fputs(",", f_);
    newline_indent();
    std::fprintf(f_, "\"%s\": ", key);
    first_ = false;
  }

  std::string path_;
  std::string tmp_;
  std::FILE* f_;
  bool first_ = true;
  int depth_ = 1;
};

}  // namespace apna::bench
